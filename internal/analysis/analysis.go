// Package analysis is a small, stdlib-only static-analysis framework for
// this repository. It loads and type-checks every package of the module
// from source (go/parser + go/types, no golang.org/x/tools), runs a set of
// repo-specific analyzers over the typed syntax trees, and reports
// diagnostics with file:line:column positions.
//
// The analyzers enforce the invariants the reproduction depends on:
// deterministic randomness (every RNG is injected and seeded), float-safe
// comparisons, lock hygiene on the concurrent measurement types, checked
// errors, and error returns instead of panics in library code.
//
// Findings can be suppressed at a single site with
//
//	//lint:ignore <analyzer> <reason>
//
// placed on the flagged line or on the line directly above it, or for a
// whole file with
//
//	//lint:file-ignore <analyzer> <reason>
//
// Both forms require a non-empty reason; a directive without one is itself
// reported as a diagnostic (analyzer "lintdirective").
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"sort"
	"strings"
	"sync"
)

// Diagnostic is one finding: which analyzer fired, where, and why.
type Diagnostic struct {
	Analyzer string         `json:"analyzer"`
	Pos      token.Position `json:"pos"`
	Message  string         `json:"message"`
}

// String renders the diagnostic in the conventional path:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Analyzer is one static check. Run inspects a single type-checked package
// through the Pass and reports findings with Pass.Reportf.
type Analyzer interface {
	// Name is the short identifier used in output and in //lint:ignore
	// directives.
	Name() string
	// Doc is a one-paragraph description of what the analyzer enforces.
	Doc() string
	// Run analyzes one package.
	Run(p *Pass)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Pkg  *Package
	name string

	mu    sync.Mutex
	diags []Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.name,
		Pos:      p.Pkg.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// All returns the full analyzer suite in registration order: the style
// and hygiene analyzers from the first lint layer, then the
// determinism-contract analyzers built on the dataflow layer, then the
// suppression-rot check.
func All() []Analyzer {
	return []Analyzer{
		GlobalRand{},
		FloatEq{},
		MutexCopy{},
		UncheckedErr{},
		PanicPath{},
		CtxArg{},
		MapRange{},
		Walltime{},
		ParFold{},
		SeedFlow{},
		ErrCmp{},
		RNGField{},
		DeadIgnore{},
	}
}

// ByNames resolves a comma-separated analyzer name list against the full
// suite, preserving registration order. Unknown names are returned in the
// second result so drivers can report them.
func ByNames(names string) ([]Analyzer, []string) {
	want := map[string]bool{}
	for _, n := range strings.Split(names, ",") {
		if n = strings.TrimSpace(n); n != "" {
			want[n] = true
		}
	}
	var out []Analyzer
	for _, a := range All() {
		if want[a.Name()] {
			out = append(out, a)
			delete(want, a.Name())
		}
	}
	unknown := make([]string, 0, len(want))
	for n := range want {
		unknown = append(unknown, n) //lint:ignore maprange sorted on the next line
	}
	sort.Strings(unknown)
	return out, unknown
}

// Run applies every analyzer to every package, filters suppressed
// findings, and returns the surviving diagnostics sorted by position.
// Packages are analyzed concurrently; type information is read-only by
// this point, so the only shared mutable state is the diagnostic list.
func Run(pkgs []*Package, analyzers []Analyzer) []Diagnostic {
	var (
		mu  sync.Mutex
		out []Diagnostic
		wg  sync.WaitGroup
	)
	enabled := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		enabled[a.Name()] = true
	}
	for _, pkg := range pkgs {
		wg.Add(1)
		go func(pkg *Package) {
			defer wg.Done()
			diags := runPackage(pkg, analyzers, enabled)
			mu.Lock()
			out = append(out, diags...)
			mu.Unlock()
		}(pkg)
	}
	wg.Wait()
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

func runPackage(pkg *Package, analyzers []Analyzer, enabled map[string]bool) []Diagnostic {
	sup, supDiags := collectDirectives(pkg)
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Pkg: pkg, name: a.Name()}
		a.Run(pass)
		diags = append(diags, pass.diags...)
	}
	kept := diags[:0]
	for _, d := range diags {
		if !sup.suppresses(d) {
			kept = append(kept, d)
		}
	}
	// The deadignore pass runs over the suppression table once every
	// enabled analyzer has reported: only now is "this directive silenced
	// nothing" a fact of the run rather than a race against later passes.
	if enabled[deadIgnoreName] {
		supDiags = append(supDiags, sup.dead(enabled)...)
	}
	return append(kept, supDiags...)
}

// inspect walks every file of the package in source order.
func inspect(pkg *Package, fn func(ast.Node) bool) {
	for _, f := range pkg.Files {
		ast.Inspect(f, fn)
	}
}
