package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ParFold enforces the internal/par worker contract, the two rules the
// deterministic parallel engine is built on: a closure handed to par.For /
// par.ForContext runs concurrently with its siblings, so it must write
// only to index-addressed slots (results[i] = ...) and return everything
// else through the pool's index-ordered fold. Direct appends, channel
// sends, and writes to captured variables from inside a worker make the
// outcome depend on goroutine scheduling — precisely the nondeterminism
// the serial-plan/ordered-fold design exists to exclude.
//
// Allowed inside a worker closure with index parameter i:
//   - element writes into captured slices (results[i] = v, grid[a][b] = v):
//     slot addressing is the contract, and the determinism tests catch
//     colliding indices;
//   - any mutation of locals declared inside the closure;
//   - mutation through pointers selected by the index (w := items[i];
//     w.field = v) — that is an index-addressed slot reached indirectly.
//
// Flagged:
//   - assignments (including op-assign, ++/--, and x = append(x, ...)) to
//     captured variables;
//   - sends on any channel;
//   - writes into captured maps;
//   - field/pointer writes through captured state not derived from the
//     index parameter (t := shared; t.count++).
type ParFold struct{}

// Name implements Analyzer.
func (ParFold) Name() string { return "parfold" }

// Doc implements Analyzer.
func (ParFold) Doc() string {
	return "par.For/ForContext workers must write only index-addressed slots; no appends, channel sends, or captured-state mutation from worker closures"
}

// Run implements Analyzer.
func (ParFold) Run(p *Pass) {
	inspect(p.Pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := pkgFuncName(p, call.Fun, "repro/internal/par")
		if !ok || (name != "For" && name != "ForContext") || len(call.Args) == 0 {
			return true
		}
		worker, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
		if !ok {
			return true // a named worker function is opaque to this intra-procedural check
		}
		checkWorker(p, name, worker)
		return true
	})
}

// checkWorker validates one worker closure body against the contract.
func checkWorker(p *Pass, poolFunc string, worker *ast.FuncLit) {
	info := p.Pkg.Info
	var idx types.Object
	if params := worker.Type.Params; params != nil && len(params.List) == 1 && len(params.List[0].Names) == 1 {
		idx = info.ObjectOf(params.List[0].Names[0])
	}
	t := taintFrom(info, worker.Body, idx)
	flagWrite := func(pos token.Pos, form, name string) {
		p.Reportf(pos, "par.%s worker %s %q: workers must write only index-addressed slots and return results through the pool's ordered fold", poolFunc, form, name)
	}
	ast.Inspect(worker.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				checkWorkerTarget(p, worker, t, lhs, flagWrite)
			}
		case *ast.IncDecStmt:
			checkWorkerTarget(p, worker, t, n.X, flagWrite)
		case *ast.SendStmt:
			p.Reportf(n.Arrow, "par.%s worker sends on a channel: receive order depends on goroutine scheduling; write results[i] and fold in index order instead", poolFunc)
		case *ast.CallExpr:
			// delete(m, k) on a captured map is a map write in call clothing.
			if id, ok := n.Fun.(*ast.Ident); ok {
				if b, ok := info.Uses[id].(*types.Builtin); ok && b.Name() == "delete" && len(n.Args) > 0 {
					checkWorkerTarget(p, worker, t, n.Args[0], flagWrite)
				}
			}
		}
		return true
	})
}

// checkWorkerTarget classifies one write target inside a worker closure
// and reports contract violations through flag.
func checkWorkerTarget(p *Pass, worker *ast.FuncLit, t *taint, lhs ast.Expr, flag func(pos token.Pos, form, name string)) {
	info := p.Pkg.Info
	switch lhs := lhs.(type) {
	case *ast.Ident:
		if lhs.Name == "_" {
			return
		}
		obj := info.ObjectOf(lhs)
		if obj != nil && !declaredWithin(obj, worker) {
			flag(lhs.Pos(), "assigns captured", lhs.Name)
		}
	case *ast.IndexExpr:
		base, ok := baseIdent(lhs.X)
		if !ok {
			return
		}
		obj := info.ObjectOf(base)
		if obj == nil || declaredWithin(obj, worker) {
			return
		}
		if isMapType(info.TypeOf(lhs.X)) {
			flag(lhs.Pos(), "writes into captured map", base.Name)
		}
		// Slice/array element writes are the index-addressed slot contract.
	case *ast.StarExpr, *ast.SelectorExpr:
		var inner ast.Expr
		if se, ok := lhs.(*ast.StarExpr); ok {
			inner = se.X
		} else {
			inner = lhs.(*ast.SelectorExpr).X
		}
		base, ok := baseIdent(inner)
		if !ok {
			return
		}
		obj := info.ObjectOf(base)
		if obj == nil {
			return
		}
		if !declaredWithin(obj, worker) {
			flag(lhs.Pos(), "writes through captured", base.Name)
			return
		}
		// A local alias is fine when it was selected by the index (an
		// index-addressed slot reached through a pointer); an alias of
		// captured state that ignores the index is shared mutation.
		if !t.objTainted(obj) && aliasesCapture(info, worker, base) {
			flag(lhs.Pos(), "writes shared state through the non-index alias", base.Name)
		}
	case *ast.ParenExpr:
		checkWorkerTarget(p, worker, t, lhs.X, flag)
	}
}

// aliasesCapture reports whether the local variable behind id may hold a
// value derived from state captured from outside the worker: it is tainted
// by any object declared outside the closure.
func aliasesCapture(info *types.Info, worker *ast.FuncLit, id *ast.Ident) bool {
	var captured []types.Object
	seen := map[types.Object]bool{}
	ast.Inspect(worker.Body, func(n ast.Node) bool {
		use, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		obj, ok := info.Uses[use].(*types.Var)
		if !ok || seen[obj] || declaredWithin(obj, worker) {
			return true
		}
		seen[obj] = true
		captured = append(captured, obj)
		return true
	})
	t := taintFrom(info, worker.Body, captured...)
	return t.objTainted(info.ObjectOf(id))
}
