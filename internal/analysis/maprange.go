package analysis

import (
	"go/ast"
	"go/types"
)

// MapRange flags map iteration whose visit order escapes into an ordered
// sink. Go randomizes map iteration order per run, so a `range m` feeding
// an append to a slice declared outside the loop, a channel send, or a
// hash/record/stream writer produces output that differs between two runs
// of the same seed — exactly the class of bug the golden stream hashes
// exist to catch, but caught here at lint time instead of at test time.
//
// The analyzer taint-tracks the iteration variables through the loop body
// (assignments, derived locals, call results), so indirect escapes such as
//
//	for k, v := range m {
//		s := fmt.Sprintf("%s=%d", k, v)
//		lines = append(lines, s) // flagged
//	}
//
// are found too. Order-insensitive uses — writes back into a map, set
// membership, counting, max/min folds — are not flagged. When the
// consumer sorts afterwards, suppress with
// //lint:ignore maprange <sorted below> on the escaping line.
type MapRange struct{}

// Name implements Analyzer.
func (MapRange) Name() string { return "maprange" }

// Doc implements Analyzer.
func (MapRange) Doc() string {
	return "flag map iteration order escaping into ordered sinks (appends to outer slices, channel sends, hash/record writers); sort keys first or annotate the sorted consumer"
}

// orderedSinkCalls are callee names through which a per-iteration value
// makes iteration order observable: stream and hash writers, encoders,
// and formatted output.
var orderedSinkCalls = map[string]string{
	"Write":       "a writer",
	"WriteString": "a writer",
	"WriteByte":   "a writer",
	"WriteRune":   "a writer",
	"Encode":      "an encoder",
	"Sum":         "a hash",
	"Fprint":      "formatted output",
	"Fprintf":     "formatted output",
	"Fprintln":    "formatted output",
	"Print":       "formatted output",
	"Printf":      "formatted output",
	"Println":     "formatted output",
}

// Run implements Analyzer.
func (MapRange) Run(p *Pass) {
	info := p.Pkg.Info
	inspect(p.Pkg, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok || !isMapType(info.TypeOf(rs.X)) {
			return true
		}
		var seeds []types.Object
		for _, e := range []ast.Expr{rs.Key, rs.Value} {
			if id, ok := e.(*ast.Ident); ok && id.Name != "_" {
				seeds = append(seeds, info.ObjectOf(id))
			}
		}
		if len(seeds) == 0 {
			// Bare `for range m` exposes only the length; no order escapes
			// through the iteration variables. Sinks inside the body can
			// still leak order by side effect count, but without a value
			// there is nothing ordered to observe.
			return true
		}
		t := taintFrom(info, rs.Body, seeds...)
		checkMapRangeBody(p, rs, t)
		return true
	})
}

// checkMapRangeBody reports every ordered sink inside one map-range body
// that a tainted (iteration-order-dependent) value reaches.
func checkMapRangeBody(p *Pass, rs *ast.RangeStmt, t *taint) {
	info := p.Pkg.Info
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(info, call) || !anyTainted(t, call.Args[1:]) {
					continue
				}
				if i >= len(n.Lhs) {
					continue
				}
				base, ok := baseIdent(n.Lhs[i])
				if !ok {
					continue
				}
				obj := info.ObjectOf(base)
				if obj != nil && !declaredWithin(obj, rs) {
					p.Reportf(call.Pos(), "append of a map-iteration value to %q, which outlives the loop: iteration order is randomized, so the slice order differs run to run; sort the keys first or sort the result", base.Name)
				}
			}
		case *ast.SendStmt:
			if t.exprTainted(n.Value) {
				p.Reportf(n.Arrow, "map-iteration value sent on a channel: the receive order follows the randomized iteration order; sort the keys first")
			}
		case *ast.CallExpr:
			sel, ok := n.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			kind, sink := orderedSinkCalls[sel.Sel.Name]
			if !sink || !anyTainted(t, n.Args) {
				return true
			}
			// Writes into buffers declared inside the loop body are
			// per-iteration scratch; only escapes past the loop are ordered.
			if base, ok := baseIdent(sel.X); ok {
				if obj := info.ObjectOf(base); obj != nil && declaredWithin(obj, rs) {
					return true
				}
			}
			p.Reportf(n.Pos(), "map-iteration value reaches %s via %s: output order follows the randomized iteration order; sort the keys first", kind, sel.Sel.Name)
		}
		return true
	})
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func isBuiltinAppend(info *types.Info, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || len(call.Args) < 2 {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}
