package analysis

import (
	"go/ast"
	"go/types"
)

// GlobalRand forbids the process-global math/rand generator and
// time-derived seeds. Every experiment in EXPERIMENTS.md is a claim about
// seeded runs; a single top-level rand.Intn or rand.New(rand.NewSource(
// time.Now().UnixNano())) silently breaks run-to-run reproducibility and
// with it the Fig. 4/5 and Table I comparisons. All randomness must flow
// through an injected, explicitly seeded *rand.Rand.
type GlobalRand struct{}

// Name implements Analyzer.
func (GlobalRand) Name() string { return "globalrand" }

// Doc implements Analyzer.
func (GlobalRand) Doc() string {
	return "forbid top-level math/rand functions and time.Now()-derived seeds; inject a seeded *rand.Rand instead"
}

// constructor functions of math/rand that do not touch the global source.
var randConstructors = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// Run implements Analyzer.
func (GlobalRand) Run(p *Pass) {
	inspect(p.Pkg, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := pkgFuncName(p, call.Fun, "math/rand")
		if !ok {
			return true
		}
		if !randConstructors[name] {
			p.Reportf(call.Pos(), "call to global math/rand.%s; all randomness must flow through an injected *rand.Rand", name)
			return true
		}
		if name != "NewSource" {
			// A wall clock can only become a seed through NewSource, and
			// checking only there keeps rand.New(rand.NewSource(...)) from
			// being reported twice.
			return true
		}
		for _, arg := range call.Args {
			ast.Inspect(arg, func(m ast.Node) bool {
				inner, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if fn, ok := pkgFuncName(p, inner.Fun, "time"); ok && fn == "Now" {
					p.Reportf(inner.Pos(), "RNG seed derived from time.Now(); seeds must be explicit for reproducible experiments")
				}
				return true
			})
		}
		return true
	})
}

// pkgFuncName reports whether fun is a selector pkg.Name where pkg is an
// import of pkgPath, returning the selected name.
func pkgFuncName(p *Pass, fun ast.Expr, pkgPath string) (string, bool) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName)
	if !ok || pn.Imported().Path() != pkgPath {
		return "", false
	}
	return sel.Sel.Name, true
}
