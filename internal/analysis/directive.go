package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix and fileIgnorePrefix are the two suppression forms. The
// reason is mandatory: suppressions without a stated justification defeat
// the point of running the suite at all.
const (
	ignorePrefix     = "//lint:ignore"
	fileIgnorePrefix = "//lint:file-ignore"
	// directiveAnalyzer is the pseudo-analyzer name used for diagnostics
	// about malformed directives themselves.
	directiveAnalyzer = "lintdirective"
)

// directive is one well-formed suppression comment. used flips when the
// directive silences at least one diagnostic in the current run; the
// deadignore pass reports the ones that never do.
type directive struct {
	pos      token.Position
	analyzer string
	isFile   bool
	used     bool
}

// suppressions records, per file, which (line, analyzer) pairs and which
// whole-file analyzers are silenced, keeping the directive identity so
// usage can be tracked.
type suppressions struct {
	// line maps filename -> line -> analyzer name -> directive.
	line map[string]map[int]map[string]*directive
	// file maps filename -> analyzer name -> directive.
	file map[string]map[string]*directive
	// all holds every well-formed directive in source order.
	all []*directive
}

// suppresses reports whether d is silenced by a directive, marking the
// directive used. A line directive covers the line it appears on and the
// line directly below it, so both end-of-line and standalone-comment
// placement work:
//
//	x := a.Clone() //lint:ignore mutexcopy deliberate snapshot
//
//	//lint:ignore mutexcopy deliberate snapshot
//	x := a.Clone()
func (s *suppressions) suppresses(d Diagnostic) bool {
	if d.Analyzer == directiveAnalyzer || d.Analyzer == deadIgnoreName {
		return false
	}
	if dir := s.file[d.Pos.Filename][d.Analyzer]; dir != nil {
		dir.used = true
		return true
	}
	byLine := s.line[d.Pos.Filename]
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if dir := byLine[ln][d.Analyzer]; dir != nil {
			dir.used = true
			return true
		}
	}
	return false
}

// dead returns one diagnostic per directive that silenced nothing in this
// run, restricted to directives whose target analyzer actually ran (a
// walltime suppression is not stale just because the driver ran with
// -run errcmp) plus directives naming an analyzer that does not exist at
// all.
func (s *suppressions) dead(enabled map[string]bool) []Diagnostic {
	registry := map[string]bool{}
	for _, a := range All() {
		registry[a.Name()] = true
	}
	var out []Diagnostic
	for _, dir := range s.all {
		if dir.used {
			continue
		}
		form := "//lint:ignore"
		if dir.isFile {
			form = "//lint:file-ignore"
		}
		switch {
		case !registry[dir.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: deadIgnoreName,
				Pos:      dir.pos,
				Message:  form + " names unknown analyzer \"" + dir.analyzer + "\"; it can never suppress anything — fix the name or delete the directive",
			})
		case enabled[dir.analyzer]:
			out = append(out, Diagnostic{
				Analyzer: deadIgnoreName,
				Pos:      dir.pos,
				Message:  form + " " + dir.analyzer + " suppresses no finding; the code it excused has moved or been fixed — delete the stale directive",
			})
		}
	}
	return out
}

// collectDirectives scans every comment of the package for lint
// directives. Malformed directives (unknown form, missing analyzer or
// reason) are returned as diagnostics so they fail the build instead of
// silently suppressing nothing.
func collectDirectives(pkg *Package) (*suppressions, []Diagnostic) {
	sup := &suppressions{
		line: map[string]map[int]map[string]*directive{},
		file: map[string]map[string]*directive{},
	}
	var diags []Diagnostic
	bad := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Analyzer: directiveAnalyzer,
			Pos:      pkg.Fset.Position(pos),
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				var rest string
				var isFile bool
				switch {
				case strings.HasPrefix(text, fileIgnorePrefix):
					rest, isFile = text[len(fileIgnorePrefix):], true
				case strings.HasPrefix(text, ignorePrefix):
					rest, isFile = text[len(ignorePrefix):], false
				case strings.HasPrefix(text, "//lint:"):
					bad(c.Pos(), "unknown lint directive; expected //lint:ignore or //lint:file-ignore")
					continue
				default:
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad(c.Pos(), "lint directive is missing the analyzer name")
					continue
				}
				if len(fields) < 2 {
					bad(c.Pos(), "lint directive is missing a reason; write //lint:ignore "+fields[0]+" <why this is safe>")
					continue
				}
				name := fields[0]
				pos := pkg.Fset.Position(c.Pos())
				dir := &directive{pos: pos, analyzer: name, isFile: isFile}
				sup.all = append(sup.all, dir)
				if isFile {
					byFile := sup.file[pos.Filename]
					if byFile == nil {
						byFile = map[string]*directive{}
						sup.file[pos.Filename] = byFile
					}
					byFile[name] = dir
					continue
				}
				byLine := sup.line[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]*directive{}
					sup.line[pos.Filename] = byLine
				}
				if byLine[pos.Line] == nil {
					byLine[pos.Line] = map[string]*directive{}
				}
				byLine[pos.Line][name] = dir
			}
		}
	}
	return sup, diags
}
