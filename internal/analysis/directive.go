package analysis

import (
	"go/token"
	"strings"
)

// ignorePrefix and fileIgnorePrefix are the two suppression forms. The
// reason is mandatory: suppressions without a stated justification defeat
// the point of running the suite at all.
const (
	ignorePrefix     = "//lint:ignore"
	fileIgnorePrefix = "//lint:file-ignore"
	// directiveAnalyzer is the pseudo-analyzer name used for diagnostics
	// about malformed directives themselves.
	directiveAnalyzer = "lintdirective"
)

// suppressions records, per file, which (line, analyzer) pairs and which
// whole-file analyzers are silenced.
type suppressions struct {
	// line maps filename -> line -> analyzer names suppressed at that line.
	line map[string]map[int]map[string]bool
	// file maps filename -> analyzer names suppressed for the whole file.
	file map[string]map[string]bool
}

// suppresses reports whether d is silenced by a directive. A line
// directive covers the line it appears on and the line directly below it,
// so both end-of-line and standalone-comment placement work:
//
//	x := a.Clone() //lint:ignore mutexcopy deliberate snapshot
//
//	//lint:ignore mutexcopy deliberate snapshot
//	x := a.Clone()
func (s *suppressions) suppresses(d Diagnostic) bool {
	if d.Analyzer == directiveAnalyzer {
		return false
	}
	if byFile := s.file[d.Pos.Filename]; byFile[d.Analyzer] {
		return true
	}
	byLine := s.line[d.Pos.Filename]
	for _, ln := range []int{d.Pos.Line, d.Pos.Line - 1} {
		if byLine[ln][d.Analyzer] {
			return true
		}
	}
	return false
}

// collectDirectives scans every comment of the package for lint
// directives. Malformed directives (unknown form, missing analyzer or
// reason) are returned as diagnostics so they fail the build instead of
// silently suppressing nothing.
func collectDirectives(pkg *Package) (*suppressions, []Diagnostic) {
	sup := &suppressions{
		line: map[string]map[int]map[string]bool{},
		file: map[string]map[string]bool{},
	}
	var diags []Diagnostic
	bad := func(pos token.Pos, msg string) {
		diags = append(diags, Diagnostic{
			Analyzer: directiveAnalyzer,
			Pos:      pkg.Fset.Position(pos),
			Message:  msg,
		})
	}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				var rest string
				var isFile bool
				switch {
				case strings.HasPrefix(text, fileIgnorePrefix):
					rest, isFile = text[len(fileIgnorePrefix):], true
				case strings.HasPrefix(text, ignorePrefix):
					rest, isFile = text[len(ignorePrefix):], false
				case strings.HasPrefix(text, "//lint:"):
					bad(c.Pos(), "unknown lint directive; expected //lint:ignore or //lint:file-ignore")
					continue
				default:
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					bad(c.Pos(), "lint directive is missing the analyzer name")
					continue
				}
				if len(fields) < 2 {
					bad(c.Pos(), "lint directive is missing a reason; write //lint:ignore "+fields[0]+" <why this is safe>")
					continue
				}
				name := fields[0]
				pos := pkg.Fset.Position(c.Pos())
				if isFile {
					byFile := sup.file[pos.Filename]
					if byFile == nil {
						byFile = map[string]bool{}
						sup.file[pos.Filename] = byFile
					}
					byFile[name] = true
					continue
				}
				byLine := sup.line[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					sup.line[pos.Filename] = byLine
				}
				if byLine[pos.Line] == nil {
					byLine[pos.Line] = map[string]bool{}
				}
				byLine[pos.Line][name] = true
			}
		}
	}
	return sup, diags
}
