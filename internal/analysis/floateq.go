package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// FloatEq flags == and != between two computed floating-point operands.
// Latency and GFLOPS values come out of accumulating float pipelines, so
// exact equality is a correctness trap (0.1+0.2 != 0.3); comparisons
// should use a tolerance. Comparisons where either side is a compile-time
// constant are allowed: sentinel checks such as `m.GFLOPS == 0` test a
// value that was assigned exactly and are deliberate.
type FloatEq struct{}

// Name implements Analyzer.
func (FloatEq) Name() string { return "floateq" }

// Doc implements Analyzer.
func (FloatEq) Doc() string {
	return "flag ==/!= between computed float operands; compare with a tolerance (constant sentinels like x == 0 are allowed)"
}

// Run implements Analyzer.
func (FloatEq) Run(p *Pass) {
	info := p.Pkg.Info
	inspect(p.Pkg, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		if !isFloat(info.TypeOf(be.X)) || !isFloat(info.TypeOf(be.Y)) {
			return true
		}
		if isConstExpr(info, be.X) || isConstExpr(info, be.Y) {
			return true
		}
		p.Reportf(be.OpPos, "%s between float operands; use a tolerance (math.Abs(a-b) < eps) or compare representations explicitly", be.Op)
		return true
	})
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}
