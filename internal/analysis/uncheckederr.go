package analysis

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/types"
	"strings"
)

// UncheckedErr flags calls in internal/ packages whose error result is
// silently discarded: a call used as a bare statement, deferred, or
// launched with go, where the function's only or last result is an error.
// A dropped error from record.Write or bufio.Flush means an experiment
// "succeeded" with a truncated results file. Explicitly assigning to the
// blank identifier (`_ = f()`) is allowed — it is a visible, greppable
// decision rather than an accident.
//
// Exempt: fmt.Print/Printf/Println (terminal output), calls on the
// never-failing in-memory writers bytes.Buffer and strings.Builder, and
// fmt.Fprint* directed at a never-failing or error-latching writer
// (bytes.Buffer, strings.Builder, bufio.Writer, tabwriter.Writer — the
// latter two hold the first error and resurface it at Flush, which this
// analyzer still requires to be checked).
type UncheckedErr struct{}

// Name implements Analyzer.
func (UncheckedErr) Name() string { return "uncheckederr" }

// Doc implements Analyzer.
func (UncheckedErr) Doc() string {
	return "flag discarded error returns (bare, deferred, or go'd calls) in internal/ packages; handle, return, or assign to _ deliberately"
}

// Run implements Analyzer.
func (UncheckedErr) Run(p *Pass) {
	if !strings.Contains(p.Pkg.Path, "/internal/") {
		return
	}
	inspect(p.Pkg, func(n ast.Node) bool {
		var call *ast.CallExpr
		var how string
		switch n := n.(type) {
		case *ast.ExprStmt:
			call, how = asCall(n.X), "call"
		case *ast.DeferStmt:
			call, how = n.Call, "deferred call"
		case *ast.GoStmt:
			call, how = n.Call, "go'd call"
		}
		if call == nil || !returnsError(p.Pkg.Info, call) || isExemptCall(p, call) {
			return true
		}
		p.Reportf(call.Pos(), "%s to %s discards its error; handle it, return it, or assign to _ with a comment", how, renderExpr(p, call.Fun))
		return true
	})
}

func asCall(e ast.Expr) *ast.CallExpr {
	call, _ := e.(*ast.CallExpr)
	return call
}

// returnsError reports whether the call's only or last result is error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	sig, ok := info.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return false // conversion or builtin
	}
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// safeWriterTypes are writer types for which dropping a per-write error is
// sound: in-memory writers never fail, and the buffered writers latch the
// first error and return it from Flush (whose own result stays checked).
var safeWriterTypes = map[[2]string]bool{
	{"bytes", "Buffer"}:          true,
	{"strings", "Builder"}:       true,
	{"bufio", "Writer"}:          true,
	{"text/tabwriter", "Writer"}: true,
}

// isExemptCall allows terminal printing, calls on never-failing in-memory
// writers, and fmt.Fprint* aimed at a safe writer.
func isExemptCall(p *Pass, call *ast.CallExpr) bool {
	if name, ok := pkgFuncName(p, call.Fun, "fmt"); ok {
		switch name {
		case "Print", "Printf", "Println":
			return true
		case "Fprint", "Fprintf", "Fprintln":
			return len(call.Args) > 0 && isSafeWriter(p.Pkg.Info.TypeOf(call.Args[0]))
		}
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	return isSafeWriter(p.Pkg.Info.TypeOf(sel.X))
}

func isSafeWriter(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	return safeWriterTypes[[2]string{named.Obj().Pkg().Path(), named.Obj().Name()}]
}

// renderExpr prints an expression (the callee) as source text.
func renderExpr(p *Pass, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, p.Pkg.Fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
