package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkSrc parses and type-checks one stdlib-free source file and returns
// the file plus its type info.
func checkSrc(t *testing.T, src string) (*ast.File, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "src.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := &types.Info{
		Types: map[ast.Expr]types.TypeAndValue{},
		Defs:  map[*ast.Ident]types.Object{},
		Uses:  map[*ast.Ident]types.Object{},
	}
	conf := types.Config{}
	if _, err := conf.Check("p", fset, []*ast.File{f}, info); err != nil {
		t.Fatal(err)
	}
	return f, info
}

// funcBody returns the body of the named function.
func funcBody(t *testing.T, f *ast.File, name string) *ast.FuncDecl {
	t.Helper()
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == name {
			return fd
		}
	}
	t.Fatalf("no function %q", name)
	return nil
}

// objByName finds a defined object with the given name inside fn.
func objByName(t *testing.T, info *types.Info, fn *ast.FuncDecl, name string) types.Object {
	t.Helper()
	var out types.Object
	ast.Inspect(fn, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && id.Name == name {
			if obj := info.Defs[id]; obj != nil {
				out = obj
			}
		}
		return true
	})
	if out == nil {
		t.Fatalf("no object %q in %s", name, fn.Name.Name)
	}
	return out
}

func TestTaintPropagation(t *testing.T) {
	const src = `package p

type pair struct{ a, b int }

func f(items []pair, j int) {
	w := items[j]      // tainted via index
	sum := w.a + w.b   // tainted via selector and binop
	clean := len(items) // not tainted: j does not flow in
	double := sum * 2  // tainted transitively
	_ = clean
	_ = double
}
`
	f, info := checkSrc(t, src)
	fn := funcBody(t, f, "f")
	var j types.Object
	for id, obj := range info.Defs {
		if id.Name == "j" {
			j = obj
		}
	}
	if j == nil {
		t.Fatal("param j not found")
	}
	taint := taintFrom(info, fn.Body, j)
	for name, want := range map[string]bool{"w": true, "sum": true, "double": true, "clean": false} {
		obj := objByName(t, info, fn, name)
		if got := taint.objTainted(obj); got != want {
			t.Errorf("taint(%s) = %v, want %v", name, got, want)
		}
	}
}

func TestTaintFixpointAcrossStatementOrder(t *testing.T) {
	// y is assigned from x before x is tainted in source order inside the
	// loop; the fixpoint must still reach it.
	const src = `package p

func f(src map[int]int) {
	var x, y int
	for k := range src {
		y = x
		x = k
	}
	_ = y
}
`
	f, info := checkSrc(t, src)
	fn := funcBody(t, f, "f")
	var rangeStmt *ast.RangeStmt
	ast.Inspect(fn, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			rangeStmt = rs
		}
		return true
	})
	k := info.Defs[rangeStmt.Key.(*ast.Ident)]
	taint := taintFrom(info, fn.Body, k)
	if !taint.objTainted(objByName(t, info, fn, "y")) {
		t.Error("y should be tainted through the x -> y chain discovered on the second pass")
	}
}

func TestConstOnly(t *testing.T) {
	const src = `package p

const k = 9

func f(seed int64) {
	a := int64(42)
	b := a*2 + k
	c := seed
	d := a + c
	e := int64(0)
	e = e*6364136223846793005 + 1442695040888963407
	_, _, _ = b, d, e
}
`
	f, info := checkSrc(t, src)
	fn := funcBody(t, f, "f")
	scan := newConstScan(info, fn)
	want := map[string]bool{"a": true, "b": true, "c": false, "d": false, "e": true}
	ast.Inspect(fn, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		expect, tracked := want[id.Name]
		if !tracked || info.Defs[id] == nil {
			return true
		}
		if got := scan.constOnly(id); got != expect {
			t.Errorf("constOnly(%s) = %v, want %v", id.Name, got, expect)
		}
		return true
	})
}

func TestConstOnlyAddressTakenIsNotConst(t *testing.T) {
	const src = `package p

func mut(p *int64)

func f() int64 {
	s := int64(7)
	mut(&s)
	return s
}
`
	f, info := checkSrc(t, src)
	fn := funcBody(t, f, "f")
	scan := newConstScan(info, fn)
	var ret ast.Expr
	ast.Inspect(fn, func(n ast.Node) bool {
		if rs, ok := n.(*ast.ReturnStmt); ok {
			ret = rs.Results[0]
		}
		return true
	})
	if scan.constOnly(ret) {
		t.Error("address-taken local must not be constant-only")
	}
}
