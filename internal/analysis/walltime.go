package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// Walltime forbids wall-clock reads on sample-stream-producing paths. The
// engine's core guarantee — bit-identical sample streams for any
// Workers × task-concurrency point, and bit-identical prefixes under
// cancellation — only holds if no tuning decision observes real time: a
// time.Now() feeding a branch, a time.Sleep pacing a loop, or a
// time.Since-based budget silently couples the stream to machine load.
//
// The analyzer applies to the packages that produce sample streams
// (internal/tuner, internal/active, internal/sched) and to the job layer
// that drives them (internal/job). Within them it builds
// the intra-package call graph and flags time.Now / time.Since /
// time.Sleep / time.After / time.Tick / time.NewTimer / time.NewTicker in
// any function reachable from the package's exported API. Pure
// observability paths — the PhaseTimes accumulator, per-task Elapsed
// reporting — are deliberate and stay allowlisted with
// //lint:ignore walltime <observability-only reason> at each call site (or
// //lint:file-ignore for a whole timing file).
type Walltime struct{}

// Name implements Analyzer.
func (Walltime) Name() string { return "walltime" }

// Doc implements Analyzer.
func (Walltime) Doc() string {
	return "forbid time.Now/Since/Sleep (and timer constructors) on paths reachable from the sample-stream-producing APIs of internal/{tuner,active,sched,job}; annotate observability-only uses"
}

// walltimePkgs are the import-path suffixes the contract covers: the
// packages whose exported APIs produce or drive deterministic sample
// streams.
var walltimePkgs = []string{
	"internal/tuner",
	"internal/active",
	"internal/sched",
	// The job layer drives the pipeline and fans records out to service
	// subscribers; a wall-clock read there could pace or reorder a stream
	// just as easily as one inside a tuner. Status timestamps are the only
	// sanctioned uses and each carries its annotation.
	"internal/job",
}

// wallClockFuncs are the time package entry points that read or depend on
// the wall clock (or a runtime timer).
var wallClockFuncs = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
	"AfterFunc": true,
}

// Run implements Analyzer.
func (Walltime) Run(p *Pass) {
	if !walltimeInScope(p.Pkg.Path) {
		return
	}
	funcs := packageFuncs(p.Pkg)
	edges := callGraph(p.Pkg, funcs)
	var roots []*types.Func
	for _, fn := range funcs {
		if fn.obj.Exported() {
			roots = append(roots, fn.obj)
		}
	}
	reach := reachableFrom(roots, edges)
	for _, fn := range funcs {
		if !reach[fn.obj] {
			continue
		}
		name := fn.obj.Name()
		ast.Inspect(fn.decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fname, ok := pkgFuncName(p, call.Fun, "time")
			if !ok || !wallClockFuncs[fname] {
				return true
			}
			p.Reportf(call.Pos(), "time.%s in %s, which is reachable from this package's exported sample-stream API: wall clock must not influence tuning decisions; if this is observability only, annotate //lint:ignore walltime <reason>", fname, name)
			return true
		})
	}
}

func walltimeInScope(path string) bool {
	for _, frag := range walltimePkgs {
		if strings.HasSuffix(path, frag) || strings.Contains(path, frag+"/") {
			return true
		}
	}
	return false
}
