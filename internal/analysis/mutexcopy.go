package analysis

import (
	"go/ast"
	"go/types"
)

// MutexCopy flags by-value copies of structs that contain a sync.Mutex,
// sync.RWMutex, sync.WaitGroup, or sync.Once — directly or through nested
// struct/array fields. A copied lock is an independent lock: code that
// copies hwsim.Simulator, transfer.History, or backend.Flaky gets a
// mutex that no longer guards anything. Flagged sites: by-value receivers,
// parameters, and results; assignments from existing lock-holding values;
// by-value call arguments; and range clauses that copy lock-holding
// elements. Constructing a fresh value with a composite literal is fine —
// a new value has no lock state to lose.
type MutexCopy struct{}

// Name implements Analyzer.
func (MutexCopy) Name() string { return "mutexcopy" }

// Doc implements Analyzer.
func (MutexCopy) Doc() string {
	return "flag by-value copies (receiver, param, result, assignment, argument, range) of types containing sync locks"
}

// Run implements Analyzer.
func (MutexCopy) Run(p *Pass) {
	info := p.Pkg.Info
	lc := &lockCache{seen: map[types.Type]bool{}}

	inspect(p.Pkg, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			checkFuncType(p, lc, n.Recv, n.Type)
		case *ast.FuncLit:
			checkFuncType(p, lc, nil, n.Type)
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if t := info.TypeOf(rhs); lc.contains(t) && !isFreshValue(rhs) {
					p.Reportf(rhs.Pos(), "assignment copies %s which contains a sync lock; use a pointer", typeName(t))
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				if t := info.TypeOf(v); lc.contains(t) && !isFreshValue(v) {
					p.Reportf(v.Pos(), "variable initialization copies %s which contains a sync lock; use a pointer", typeName(t))
				}
			}
		case *ast.CallExpr:
			for _, arg := range n.Args {
				if t := info.TypeOf(arg); lc.contains(t) && !isFreshValue(arg) {
					p.Reportf(arg.Pos(), "call passes %s by value, copying its sync lock; pass a pointer", typeName(t))
				}
			}
		case *ast.RangeStmt:
			if n.Value != nil {
				if t := info.TypeOf(n.Value); lc.contains(t) {
					p.Reportf(n.Value.Pos(), "range clause copies %s elements which contain a sync lock; range over indices or pointers", typeName(t))
				}
			}
		}
		return true
	})
}

// checkFuncType flags by-value lock-holding receivers, params, and results.
func checkFuncType(p *Pass, lc *lockCache, recv *ast.FieldList, ft *ast.FuncType) {
	info := p.Pkg.Info
	check := func(fl *ast.FieldList, kind string) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			t := info.TypeOf(f.Type)
			if lc.contains(t) {
				p.Reportf(f.Type.Pos(), "%s is %s passed by value, copying its sync lock; use *%s", kind, typeName(t), typeName(t))
			}
		}
	}
	check(recv, "receiver")
	check(ft.Params, "parameter")
	check(ft.Results, "result")
}

// isFreshValue reports whether e constructs a brand-new value (composite
// literal or function call / conversion), which carries no prior lock
// state and is safe to bind. Copies of *existing* values — identifiers,
// field selections, dereferences, index expressions — are the bug.
func isFreshValue(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.CompositeLit, *ast.CallExpr, *ast.FuncLit, *ast.BasicLit:
		return true
	case *ast.ParenExpr:
		return isFreshValue(e.X)
	}
	return false
}

// lockCache memoizes "does this type contain a lock" over the type graph.
type lockCache struct {
	seen map[types.Type]bool
}

func (c *lockCache) contains(t types.Type) bool {
	if t == nil {
		return false
	}
	if v, ok := c.seen[t]; ok {
		return v
	}
	c.seen[t] = false // cycle guard: recursive types via pointers don't copy locks
	v := c.computeContains(t)
	c.seen[t] = v
	return v
}

func (c *lockCache) computeContains(t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		if isSyncLockType(t) {
			return true
		}
		return c.contains(t.Underlying())
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if c.contains(t.Field(i).Type()) {
				return true
			}
		}
	case *types.Array:
		return c.contains(t.Elem())
	case *types.Alias:
		return c.contains(types.Unalias(t))
	}
	// Pointers, slices, maps, channels, interfaces, and funcs share state
	// by reference; copying them does not copy a lock.
	return false
}

var syncLockNames = map[string]bool{
	"Mutex":     true,
	"RWMutex":   true,
	"WaitGroup": true,
	"Once":      true,
	"Cond":      true,
	"Pool":      true,
	"Map":       true,
}

func isSyncLockType(n *types.Named) bool {
	obj := n.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && syncLockNames[obj.Name()]
}

// typeName renders t compactly, qualifying foreign packages by name only.
func typeName(t types.Type) string {
	return types.TypeString(t, func(p *types.Package) string { return p.Name() })
}
