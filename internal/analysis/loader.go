package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module.
type Package struct {
	// Path is the import path ("repro/internal/hwsim").
	Path string
	// Dir is the absolute directory the sources were read from.
	Dir string
	// Fset positions every file of the load (shared across packages).
	Fset *token.FileSet
	// Files are the parsed non-test sources, sorted by file name.
	Files []*ast.File
	// Types is the type-checked package object.
	Types *types.Package
	// Info holds the use/def/type maps produced by the checker.
	Info *types.Info
}

// Loader parses and type-checks module packages from source. Standard
// library imports are satisfied by the toolchain's source importer, so the
// loader needs nothing outside GOROOT and the module tree — no compiled
// export data and no network.
//
// LoadModule loads concurrently: all package directories are parsed in
// parallel, then type-checked in dependency waves (every package whose
// module-local imports are already checked runs concurrently with its
// wave). The shared FileSet is concurrency-safe by contract; the package
// and parse caches are guarded by mu, and the stdlib source importer —
// which is not documented as concurrency-safe — is serialized behind
// stdMu (its internal cache makes repeat imports cheap, so the first wave
// pays most of that cost once).
type Loader struct {
	fset       *token.FileSet
	std        types.Importer
	moduleRoot string
	modulePath string

	mu      sync.Mutex
	pkgs    map[string]*Package
	loading map[string]bool
	parsed  map[string][]*ast.File // dir -> parsed non-test files

	stdMu sync.Mutex
}

// NewLoader returns a loader rooted at the directory containing go.mod.
// root may be any directory inside the module.
func NewLoader(root string) (*Loader, error) {
	abs, err := filepath.Abs(root)
	if err != nil {
		return nil, err
	}
	modRoot, modPath, err := findModule(abs)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		fset:       fset,
		std:        importer.ForCompiler(fset, "source", nil),
		moduleRoot: modRoot,
		modulePath: modPath,
		pkgs:       map[string]*Package{},
		loading:    map[string]bool{},
		parsed:     map[string][]*ast.File{},
	}, nil
}

// ModuleRoot returns the absolute directory containing go.mod.
func (l *Loader) ModuleRoot() string { return l.moduleRoot }

// ModulePath returns the module's import path prefix.
func (l *Loader) ModulePath() string { return l.modulePath }

// LoadModule discovers every package directory under the module root
// (skipping testdata, hidden directories, and directories with no non-test
// Go files) and returns them all loaded and type-checked, sorted by import
// path.
func (l *Loader) LoadModule() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.moduleRoot, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.moduleRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
			return filepath.SkipDir
		}
		has, err := hasGoFiles(path)
		if err != nil {
			return err
		}
		if has {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	type target struct {
		path string
		dir  string
	}
	targets := make([]target, 0, len(dirs))
	for _, dir := range dirs {
		rel, err := filepath.Rel(l.moduleRoot, dir)
		if err != nil {
			return nil, err
		}
		path := l.modulePath
		if rel != "." {
			path = l.modulePath + "/" + filepath.ToSlash(rel)
		}
		targets = append(targets, target{path: path, dir: dir})
	}

	// Phase 1: parse every directory concurrently, filling the parse cache
	// the type-check phase reads from.
	parseErrs := make([]error, len(targets))
	var wg sync.WaitGroup
	for i, tgt := range targets {
		wg.Add(1)
		go func(i int, tgt target) {
			defer wg.Done()
			_, parseErrs[i] = l.parseDir(tgt.dir)
		}(i, tgt)
	}
	wg.Wait()
	for i, err := range parseErrs {
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %w", targets[i].path, err)
		}
	}

	// Phase 2: build the module-local import DAG from the parsed files and
	// type-check in waves — each wave checks, concurrently, every package
	// whose module-local imports are all done.
	deps := make(map[string][]string, len(targets))
	isTarget := make(map[string]bool, len(targets))
	for _, tgt := range targets {
		isTarget[tgt.path] = true
	}
	for _, tgt := range targets {
		files, _ := l.parseDir(tgt.dir) // cache hit
		seen := map[string]bool{}
		for _, f := range files {
			for _, imp := range f.Imports {
				p := strings.Trim(imp.Path.Value, `"`)
				if isTarget[p] && !seen[p] {
					seen[p] = true
					deps[tgt.path] = append(deps[tgt.path], p)
				}
			}
		}
	}
	index := make(map[string]int, len(targets))
	for i, tgt := range targets {
		index[tgt.path] = i
	}
	loadErrs := make([]error, len(targets))
	done := make(map[string]bool, len(targets))
	remaining := targets
	for len(remaining) > 0 {
		var wave, next []target
		for _, tgt := range remaining {
			ready := true
			for _, d := range deps[tgt.path] {
				if !done[d] {
					ready = false
					break
				}
			}
			if ready {
				wave = append(wave, tgt)
			} else {
				next = append(next, tgt)
			}
		}
		if len(wave) == 0 {
			// A dependency cycle among the remaining packages; fall through
			// to the sequential loader for its cycle diagnostics.
			for _, tgt := range next {
				if _, err := l.load(tgt.path, tgt.dir); err != nil {
					return nil, err
				}
			}
			break
		}
		var wwg sync.WaitGroup
		for _, tgt := range wave {
			wwg.Add(1)
			go func(i int, tgt target) {
				defer wwg.Done()
				_, loadErrs[i] = l.load(tgt.path, tgt.dir)
			}(index[tgt.path], tgt)
		}
		wwg.Wait()
		for _, tgt := range wave {
			if err := loadErrs[index[tgt.path]]; err != nil {
				return nil, err
			}
			done[tgt.path] = true
		}
		remaining = next
	}

	out := make([]*Package, 0, len(targets))
	for _, tgt := range targets {
		l.mu.Lock()
		pkg := l.pkgs[tgt.path]
		l.mu.Unlock()
		if pkg == nil {
			return nil, fmt.Errorf("analysis: package %s was never loaded", tgt.path)
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// LoadDir loads a single directory as a standalone package under the given
// import path. It is used by the tests to load fixture packages that live
// under testdata (and are therefore invisible to LoadModule and the go
// tool). Fixtures may import the standard library only.
func (l *Loader) LoadDir(dir, importPath string) (*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	return l.load(importPath, abs)
}

// parseDir parses the non-test Go sources of one directory, memoized. The
// shared FileSet is safe for concurrent use, so parsing itself happens
// outside the lock; only the cache lookups are serialized.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	l.mu.Lock()
	if files, ok := l.parsed[dir]; ok {
		l.mu.Unlock()
		return files, nil
	}
	l.mu.Unlock()

	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		// Honor build constraints exactly as `go build` does (filename
		// GOOS/GOARCH suffixes and //go:build lines) for the host platform
		// with no extra tags — otherwise mutually exclusive variants of one
		// symbol (e.g. an assembly-backed kernel and its purego fallback)
		// would both load and collide.
		ok, err := build.Default.MatchFile(dir, name)
		if err != nil {
			return nil, err
		}
		if !ok {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}

	l.mu.Lock()
	if prior, ok := l.parsed[dir]; ok {
		// Another goroutine won the race; keep its files so every consumer
		// sees one canonical parse of the directory.
		files = prior
	} else {
		l.parsed[dir] = files
	}
	l.mu.Unlock()
	return files, nil
}

// load parses and type-checks one package, memoized by import path. Wave
// scheduling in LoadModule guarantees a package's module-local imports are
// already cached before its own check starts, so recursion through
// importPkg only hits the cache; the loading map still catches genuine
// import cycles on the sequential paths (LoadDir and the cycle fallback).
func (l *Loader) load(path, dir string) (*Package, error) {
	l.mu.Lock()
	if pkg, ok := l.pkgs[path]; ok {
		l.mu.Unlock()
		return pkg, nil
	}
	if l.loading[path] {
		l.mu.Unlock()
		return nil, fmt.Errorf("analysis: import cycle through %q", path)
	}
	l.loading[path] = true
	l.mu.Unlock()
	defer func() {
		l.mu.Lock()
		delete(l.loading, path)
		l.mu.Unlock()
	}()

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}

	info := &types.Info{
		Types:     map[ast.Expr]types.TypeAndValue{},
		Defs:      map[*ast.Ident]types.Object{},
		Uses:      map[*ast.Ident]types.Object{},
		Implicits: map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importerFunc(l.importPkg)}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files, Types: tpkg, Info: info}
	l.mu.Lock()
	l.pkgs[path] = pkg
	l.mu.Unlock()
	return pkg, nil
}

// importPkg resolves an import for the type checker: module-local packages
// recurse into load; everything else goes to the stdlib source importer.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.modulePath || strings.HasPrefix(path, l.modulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.modulePath), "/")
		dir := filepath.Join(l.moduleRoot, filepath.FromSlash(rel))
		pkg, err := l.load(path, dir)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}

// importerFunc adapts a function to types.Importer.
type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// findModule walks upward from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, path string, err error) {
	for d := dir; ; {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("analysis: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// hasGoFiles reports whether dir directly contains at least one non-test
// Go source file.
func hasGoFiles(dir string) (bool, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false, err
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true, nil
		}
	}
	return false, nil
}
