package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCmp flags == and != comparisons against sentinel error variables.
// The engine wraps its sentinels — ErrNoValidConfig arrives as
// fmt.Errorf("%w (tuner %s, ...)", ErrNoValidConfig, ...), cancellation
// errors arrive wrapped by the session — so a direct identity comparison
// is a latent always-false: the caller "handles" the sentinel and never
// matches it. errors.Is unwraps the chain and is the only correct test.
// Comparisons with nil are untouched.
type ErrCmp struct{}

// Name implements Analyzer.
func (ErrCmp) Name() string { return "errcmp" }

// Doc implements Analyzer.
func (ErrCmp) Doc() string {
	return "flag ==/!= against sentinel error variables (wrapped sentinels never match identity); use errors.Is"
}

// Run implements Analyzer.
func (ErrCmp) Run(p *Pass) {
	info := p.Pkg.Info
	inspect(p.Pkg, func(n ast.Node) bool {
		be, ok := n.(*ast.BinaryExpr)
		if !ok || (be.Op != token.EQL && be.Op != token.NEQ) {
			return true
		}
		for _, operand := range []ast.Expr{be.X, be.Y} {
			if name, ok := sentinelError(info, operand); ok {
				p.Reportf(be.OpPos, "%s compares against sentinel error %s by identity; wrapped sentinels never match — use errors.Is(err, %s)", be.Op, name, name)
				return true
			}
		}
		return true
	})
}

// sentinelError reports whether e denotes a package-level variable of an
// error type — the shape of errors.New / fmt.Errorf sentinels like
// tuner.ErrNoValidConfig or io.EOF.
func sentinelError(info *types.Info, e ast.Expr) (string, bool) {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return "", false
	}
	v, ok := info.Uses[id].(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return "", false
	}
	if !isErrorType(v.Type()) {
		return "", false
	}
	return id.Name, true
}

// errIface is the universe error interface.
var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

// isErrorType reports whether t is the error interface or implements it.
func isErrorType(t types.Type) bool {
	return t != nil && types.Implements(t, errIface)
}
