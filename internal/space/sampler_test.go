package space

import (
	"math"
	"math/rand"
	"testing"
)

// TestBallSamplerUniform verifies the DP lattice-ball sampler draws each
// ball point with equal probability, via a chi-square test on a small ball
// where exact enumeration is feasible.
func TestBallSamplerUniform(t *testing.T) {
	dim := 3
	radius := 2.0
	bs := newBallSampler(dim, radius)

	// Enumerate the exact ball for reference.
	r2 := radius * radius
	type key [3]int
	ball := map[key]int{}
	rInt := int(radius)
	for a := -rInt; a <= rInt; a++ {
		for b := -rInt; b <= rInt; b++ {
			for c := -rInt; c <= rInt; c++ {
				if float64(a*a+b*b+c*c) <= r2 {
					ball[key{a, b, c}] = 0
				}
			}
		}
	}
	n := len(ball) // 33 points for r=2 in 3-D

	rng := rand.New(rand.NewSource(1))
	draws := 33000
	offset := make([]int, dim)
	for i := 0; i < draws; i++ {
		bs.sample(offset, rng)
		k := key{offset[0], offset[1], offset[2]}
		if _, ok := ball[k]; !ok {
			t.Fatalf("sampled point %v outside the ball", offset)
		}
		ball[k]++
	}

	expected := float64(draws) / float64(n)
	chi2 := 0.0
	for _, c := range ball {
		d := float64(c) - expected
		chi2 += d * d / expected
	}
	// dof = 32; the 0.999 quantile of chi-square(32) is ~62.5.
	if chi2 > 62.5 {
		t.Fatalf("chi-square %.1f exceeds the 99.9%% bound: sampler not uniform", chi2)
	}
}

func TestBallSamplerMatchesCount(t *testing.T) {
	// The DP tables of the sampler and the counter must agree.
	for dim := 1; dim <= 6; dim++ {
		for _, radius := range []float64{1, 2, 3, 4.5} {
			bs := newBallSampler(dim, radius)
			q := int(math.Floor(radius * radius))
			if got, want := bs.cum[dim][q], latticeBallCount(dim, radius*radius); got != want {
				t.Fatalf("dim %d r %v: sampler total %d vs count %d", dim, radius, got, want)
			}
		}
	}
}

func TestBallSamplerHighDim(t *testing.T) {
	// 8-D radius 4.5 (the tau*R ball of the paper's settings): every draw
	// must stay inside the ball.
	bs := newBallSampler(8, 4.5)
	rng := rand.New(rand.NewSource(2))
	offset := make([]int, 8)
	r2 := 4.5 * 4.5
	for i := 0; i < 5000; i++ {
		bs.sample(offset, rng)
		s := 0
		for _, k := range offset {
			s += k * k
		}
		if float64(s) > r2 {
			t.Fatalf("draw %v has squared norm %d > %.2f", offset, s, r2)
		}
	}
}
