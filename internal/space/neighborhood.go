package space

import (
	"math"
	"math/rand"
)

// NeighborhoodOpts tunes Neighborhood enumeration.
type NeighborhoodOpts struct {
	// MaxCandidates caps the returned set; 0 means DefaultMaxCandidates.
	// When the exact lattice ball holds more points than the cap, a uniform
	// subsample of the ball is returned instead of a truncated enumeration.
	MaxCandidates int
	// Exclude drops configs whose flat index is present (typically the
	// already-measured set), keeping BAO from re-proposing known points.
	Exclude map[uint64]bool
}

// DefaultMaxCandidates bounds one BAO step's candidate set. 8192 keeps the
// Γ-fold surrogate evaluation of a step in the low milliseconds.
const DefaultMaxCandidates = 8192

// Neighborhood returns the configurations whose knob-index vectors lie
// within Euclidean distance radius of center (excluding center itself),
// clamped to valid option ranges. This realizes the search scope C_t of the
// paper's Algorithms 3 and 4.
//
// The integer lattice ball is enumerated exactly when its size (computed by
// dynamic programming, before touching any config) is within the candidate
// cap; otherwise points are rejection-sampled uniformly from the ball. The
// result order is deterministic for the enumerated case and rng-determined
// for the sampled case.
func (s *Space) Neighborhood(center Config, radius float64, opts NeighborhoodOpts, rng *rand.Rand) []Config {
	if radius <= 0 {
		return nil
	}
	maxCand := opts.MaxCandidates
	if maxCand <= 0 {
		maxCand = DefaultMaxCandidates
	}
	r2 := radius * radius
	dim := len(s.knobs)
	ballSize := latticeBallCount(dim, r2)
	// Exact enumeration (with deterministic thinning) is cheaper than
	// rejection sampling up to fairly large balls, because the rejection
	// acceptance rate of a ball inside its bounding box collapses with
	// dimension.
	enumLimit := int64(maxCand) * 4
	if enumLimit < 65536 {
		enumLimit = 65536
	}
	if ballSize <= enumLimit {
		return s.enumerateBall(center, r2, maxCand, opts.Exclude)
	}
	return s.sampleBall(center, radius, maxCand, opts.Exclude, rng)
}

// latticeBallCount counts integer lattice points within squared distance r2
// of the origin in dim dimensions (including the origin), via the DP
// N(d, r2) = sum_k N(d-1, r2 - k^2).
func latticeBallCount(dim int, r2 float64) int64 {
	rInt := int(math.Floor(math.Sqrt(r2)))
	// counts[q] = number of (d-dim) lattice vectors with squared norm exactly q.
	q := int(math.Floor(r2))
	counts := make([]int64, q+1)
	counts[0] = 1
	const cap64 = int64(1) << 40
	for d := 0; d < dim; d++ {
		next := make([]int64, q+1)
		for norm, c := range counts {
			if c == 0 {
				continue
			}
			for k := -rInt; k <= rInt; k++ {
				nn := norm + k*k
				if nn > q {
					continue
				}
				next[nn] += c
				if next[nn] > cap64 {
					next[nn] = cap64
				}
			}
		}
		counts = next
	}
	var total int64
	for _, c := range counts {
		total += c
		if total > cap64 {
			return cap64
		}
	}
	return total
}

// enumerateBall walks the lattice ball exactly, in lexicographic offset
// order, then uniform-subsamples if the in-range result exceeds maxCand
// (rare: clamping usually keeps it below the DP bound).
func (s *Space) enumerateBall(center Config, r2 float64, maxCand int, exclude map[uint64]bool) []Config {
	dim := len(s.knobs)
	rInt := int(math.Floor(math.Sqrt(r2)))
	var out []Config
	idx := make([]int, dim)
	var rec func(pos int, used float64)
	rec = func(pos int, used float64) {
		if pos == dim {
			same := true
			for i := range idx {
				if idx[i] != center.Index[i] {
					same = false
					break
				}
			}
			if same {
				return
			}
			cp := make([]int, dim)
			copy(cp, idx)
			c := Config{space: s, Index: cp}
			if exclude != nil && exclude[c.Flat()] {
				return
			}
			out = append(out, c)
			return
		}
		kLen := s.knobs[pos].Len()
		for k := -rInt; k <= rInt; k++ {
			kk := float64(k * k)
			if used+kk > r2 {
				continue
			}
			v := center.Index[pos] + k
			if v < 0 || v >= kLen {
				continue
			}
			idx[pos] = v
			rec(pos+1, used+kk)
		}
	}
	rec(0, 0)
	if len(out) > maxCand {
		// Deterministic uniform thinning: take every stride-th point.
		stride := float64(len(out)) / float64(maxCand)
		thin := make([]Config, 0, maxCand)
		for i := 0; i < maxCand; i++ {
			thin = append(thin, out[int(float64(i)*stride)])
		}
		out = thin
	}
	return out
}

// sampleBall draws offsets exactly uniformly from the lattice ball via the
// same norm-count dynamic program used by latticeBallCount, then rejects
// only clamping violations and duplicates. Sampling one offset is
// O(dim * radius), independent of the ball volume.
func (s *Space) sampleBall(center Config, radius float64, maxCand int, exclude map[uint64]bool, rng *rand.Rand) []Config {
	dim := len(s.knobs)
	bs := newBallSampler(dim, radius)
	seen := make(map[uint64]bool, maxCand)
	out := make([]Config, 0, maxCand)
	// Rejections now come only from clamping at space edges, duplicates and
	// the excluded set, so a modest trial budget suffices.
	maxTrials := maxCand * 32
	offset := make([]int, dim)
	for t := 0; t < maxTrials && len(out) < maxCand; t++ {
		bs.sample(offset, rng)
		idx := make([]int, dim)
		valid := true
		zero := true
		for i, k := range offset {
			if k != 0 {
				zero = false
			}
			v := center.Index[i] + k
			if v < 0 || v >= s.knobs[i].Len() {
				valid = false
				break
			}
			idx[i] = v
		}
		if !valid || zero {
			continue
		}
		c := Config{space: s, Index: idx}
		f := c.Flat()
		if seen[f] || (exclude != nil && exclude[f]) {
			continue
		}
		seen[f] = true
		out = append(out, c)
	}
	return out
}

// ballSampler samples integer vectors uniformly from the dim-dimensional
// lattice ball of the given radius. cum[d][q] counts d-dimensional vectors
// with squared norm <= q; coordinates are drawn sequentially with
// probability proportional to the count of completions.
type ballSampler struct {
	dim  int
	rInt int
	q    int
	cum  [][]int64
}

func newBallSampler(dim int, radius float64) *ballSampler {
	q := int(math.Floor(radius * radius))
	rInt := int(math.Floor(radius))
	// exact[d][n] = number of d-dim vectors with squared norm exactly n.
	exact := make([]int64, q+1)
	exact[0] = 1
	cum := make([][]int64, dim+1)
	// Counts are clamped far below overflow; clamping only engages for
	// balls with >2^50 points, where near-uniformity is indistinguishable
	// from uniformity for a few thousand draws.
	const countCap = int64(1) << 50
	toCum := func(ex []int64) []int64 {
		c := make([]int64, q+1)
		var run int64
		for n := 0; n <= q; n++ {
			run += ex[n]
			if run > countCap {
				run = countCap
			}
			c[n] = run
		}
		return c
	}
	cum[0] = toCum(exact)
	for d := 1; d <= dim; d++ {
		next := make([]int64, q+1)
		for n, c := range exact {
			if c == 0 {
				continue
			}
			for k := -rInt; k <= rInt; k++ {
				nn := n + k*k
				if nn <= q {
					next[nn] += c
					if next[nn] > countCap {
						next[nn] = countCap
					}
				}
			}
		}
		exact = next
		cum[d] = toCum(exact)
	}
	return &ballSampler{dim: dim, rInt: rInt, q: q, cum: cum}
}

// sample fills offset with a uniform draw from the ball (including the
// origin; callers filter the zero offset).
func (b *ballSampler) sample(offset []int, rng *rand.Rand) {
	q := b.q
	for i := 0; i < b.dim; i++ {
		rem := b.dim - i - 1
		// Total completions over all k choices equals cum[rem+1][q]
		// (exactly, absent count clamping).
		total := b.cum[rem+1][q]
		draw := rng.Int63n(total)
		assigned := false
		for k := -b.rInt; k <= b.rInt; k++ {
			nn := q - k*k
			if nn < 0 {
				continue
			}
			w := b.cum[rem][nn]
			if draw < w {
				offset[i] = k
				q = nn
				assigned = true
				break
			}
			draw -= w
		}
		if !assigned {
			// Only reachable when count clamping broke the exact identity;
			// fall back to the always-valid zero offset.
			offset[i] = 0
		}
	}
}
