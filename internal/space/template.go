package space

import (
	"fmt"

	"repro/internal/tensor"
)

// Knob names shared by the CUDA-style schedule templates. The hardware
// simulator interprets configurations through these names, mirroring how
// TVM's code generator interprets an AutoTVM ConfigEntity.
const (
	KnobTileF          = "tile_f"  // output-channel axis: [block, vthread, thread, inner]
	KnobTileY          = "tile_y"  // output-height axis:  [block, vthread, thread, inner]
	KnobTileX          = "tile_x"  // output-width axis:   [block, vthread, thread, inner]
	KnobTileRC         = "tile_rc" // reduction channels:  [outer, inner]
	KnobTileRY         = "tile_ry" // reduction kernel-h:  [outer, inner]
	KnobTileRX         = "tile_rx" // reduction kernel-w:  [outer, inner]
	KnobTileK          = "tile_k"  // dense reduction axis: [outer, inner]
	KnobAutoUnroll     = "auto_unroll_max_step"
	KnobUnrollExplicit = "unroll_explicit"
)

// ForWorkload builds the schedule configuration space of a workload,
// mirroring TVM v0.6 CUDA templates:
//
//   - conv2d direct: 4-way splits of F/Y/X, 2-way splits of RC/RY/RX,
//     auto_unroll in {0, 512, 1500}, unroll_explicit in {0, 1};
//   - depthwise_conv2d: 4-way splits of C(=F)/Y/X, unroll knobs;
//   - dense: 4-way split of F, 2-way split of the reduction axis, unroll.
//
// The per-node sizes land in the 10^5..10^8 range the paper reports.
func ForWorkload(w tensor.Workload) (*Space, error) {
	if err := w.Valid(); err != nil {
		return nil, err
	}
	switch w.Op {
	case tensor.OpConv2D:
		return New(
			NewSplitKnob(KnobTileF, w.F, 4),
			NewSplitKnob(KnobTileY, w.OutH(), 4),
			NewSplitKnob(KnobTileX, w.OutW(), 4),
			NewSplitKnob(KnobTileRC, w.C, 2),
			NewSplitKnob(KnobTileRY, w.KH, 2),
			NewSplitKnob(KnobTileRX, w.KW, 2),
			NewEnumKnob(KnobAutoUnroll, 0, 512, 1500),
			NewEnumKnob(KnobUnrollExplicit, 0, 1),
		), nil
	case tensor.OpDepthwiseConv2D:
		return New(
			NewSplitKnob(KnobTileF, w.C, 4),
			NewSplitKnob(KnobTileY, w.OutH(), 4),
			NewSplitKnob(KnobTileX, w.OutW(), 4),
			NewEnumKnob(KnobAutoUnroll, 0, 256, 1500),
			NewEnumKnob(KnobUnrollExplicit, 0, 1),
		), nil
	case tensor.OpDense:
		return New(
			NewSplitKnob(KnobTileF, w.F, 4),
			NewSplitKnob(KnobTileK, w.C, 2),
			NewEnumKnob(KnobAutoUnroll, 0, 512, 1500),
			NewEnumKnob(KnobUnrollExplicit, 0, 1),
		), nil
	default:
		return nil, fmt.Errorf("space: no template for op %v", w.Op)
	}
}
