package space

import (
	"fmt"
	"math/rand"
	"strings"
)

// Space is a Cartesian product of knobs. Configurations are addressed
// either by a per-knob option-index vector or by a mixed-radix flat index.
type Space struct {
	knobs      []Knob
	size       uint64
	featureDim int
	saturated  bool // size overflowed uint64 (never happens for paper spaces)
}

// New builds a space over the given knobs. At least one knob is required.
func New(knobs ...Knob) *Space {
	if len(knobs) == 0 {
		//lint:ignore panicpath space-definition invariant: templates are static code, not runtime input
		panic("space: New requires at least one knob")
	}
	s := &Space{knobs: knobs}
	s.size = 1
	for _, k := range knobs {
		if k.Len() <= 0 {
			//lint:ignore panicpath space-definition invariant: templates are static code, not runtime input
			panic(fmt.Sprintf("space: knob %q has no options", k.Name()))
		}
		n := uint64(k.Len())
		if s.size > ^uint64(0)/n {
			s.saturated = true
			s.size = ^uint64(0)
		} else if !s.saturated {
			s.size *= n
		}
		s.featureDim += k.FeatureDim()
	}
	return s
}

// Knobs returns the knob list (owned by the space).
func (s *Space) Knobs() []Knob { return s.knobs }

// NumKnobs returns the number of knobs (the dimensionality of the
// index-vector view used for distances and neighborhoods).
func (s *Space) NumKnobs() int { return len(s.knobs) }

// Size returns the number of configurations (saturating at MaxUint64).
func (s *Space) Size() uint64 { return s.size }

// FeatureDim returns the length of the cost-model feature vector.
func (s *Space) FeatureDim() int { return s.featureDim }

// Knob returns the i-th knob.
func (s *Space) Knob(i int) Knob { return s.knobs[i] }

// KnobByName returns the knob with the given name, or nil.
func (s *Space) KnobByName(name string) Knob {
	for _, k := range s.knobs {
		if k.Name() == name {
			return k
		}
	}
	return nil
}

// Config is one point of a Space: an option index per knob. Configs are
// value types; Index is owned by the Config and safe to retain.
type Config struct {
	space *Space
	Index []int
}

// Space returns the space the config belongs to.
func (c Config) Space() *Space { return c.space }

// FromIndices builds a config from a per-knob option index vector,
// validating ranges.
func (s *Space) FromIndices(idx []int) (Config, error) {
	if len(idx) != len(s.knobs) {
		return Config{}, fmt.Errorf("space: index vector has %d entries, want %d", len(idx), len(s.knobs))
	}
	cp := make([]int, len(idx))
	for i, v := range idx {
		if v < 0 || v >= s.knobs[i].Len() {
			return Config{}, fmt.Errorf("space: knob %q index %d out of range [0,%d)", s.knobs[i].Name(), v, s.knobs[i].Len())
		}
		cp[i] = v
	}
	return Config{space: s, Index: cp}, nil
}

// FromFlat decodes a mixed-radix flat index into a config. The flat index
// is taken modulo Size, so any uint64 is valid input.
func (s *Space) FromFlat(flat uint64) Config {
	if !s.saturated {
		flat %= s.size
	}
	idx := make([]int, len(s.knobs))
	for i := len(s.knobs) - 1; i >= 0; i-- {
		n := uint64(s.knobs[i].Len())
		idx[i] = int(flat % n)
		flat /= n
	}
	return Config{space: s, Index: idx}
}

// Flat encodes the config as its mixed-radix flat index.
func (c Config) Flat() uint64 {
	var flat uint64
	for i, v := range c.Index {
		flat = flat*uint64(c.space.knobs[i].Len()) + uint64(v)
	}
	return flat
}

// Random draws a uniform configuration.
func (s *Space) Random(rng *rand.Rand) Config {
	idx := make([]int, len(s.knobs))
	for i, k := range s.knobs {
		idx[i] = rng.Intn(k.Len())
	}
	return Config{space: s, Index: idx}
}

// RandomSample draws n configurations uniformly without replacement
// (by flat index). If n exceeds the space size the whole space is returned.
func (s *Space) RandomSample(n int, rng *rand.Rand) []Config {
	if !s.saturated && uint64(n) >= s.size {
		out := make([]Config, 0, s.size)
		for f := uint64(0); f < s.size; f++ {
			out = append(out, s.FromFlat(f))
		}
		return out
	}
	seen := make(map[uint64]bool, n)
	out := make([]Config, 0, n)
	for len(out) < n {
		c := s.Random(rng)
		f := c.Flat()
		if seen[f] {
			continue
		}
		seen[f] = true
		out = append(out, c)
	}
	return out
}

// Features returns the log-scaled knob-value feature vector used by the
// learned cost model.
func (c Config) Features() []float64 {
	out := make([]float64, 0, c.space.featureDim)
	for i, k := range c.space.knobs {
		out = k.Feature(out, c.Index[i])
	}
	return out
}

// IndexVec returns the option-index vector as float64s. TED distances and
// BAO neighborhoods operate in this integer lattice, matching the paper's
// "radius R ... means the Euclidean distance between points".
func (c Config) IndexVec() []float64 {
	out := make([]float64, len(c.Index))
	for i, v := range c.Index {
		out[i] = float64(v)
	}
	return out
}

// Clone returns a deep copy of the config.
func (c Config) Clone() Config {
	idx := make([]int, len(c.Index))
	copy(idx, c.Index)
	return Config{space: c.space, Index: idx}
}

// Equal reports whether two configs of the same space pick identical options.
func (c Config) Equal(o Config) bool {
	if len(c.Index) != len(o.Index) {
		return false
	}
	for i := range c.Index {
		if c.Index[i] != o.Index[i] {
			return false
		}
	}
	return true
}

// String renders the config as "tile_f=[1,2,4,8] tile_y=...".
func (c Config) String() string {
	parts := make([]string, len(c.Index))
	for i, k := range c.space.knobs {
		parts[i] = k.Name() + "=" + k.Describe(c.Index[i])
	}
	return strings.Join(parts, " ")
}

// SplitFactors returns the factor tuple the config picks for the named
// split knob, or nil when the knob is absent or not a split.
func (c Config) SplitFactors(name string) []int {
	for i, k := range c.space.knobs {
		if k.Name() == name {
			if sk, ok := k.(*SplitKnob); ok {
				return sk.Factors(c.Index[i])
			}
			return nil
		}
	}
	return nil
}

// EnumValue returns the integer value the config picks for the named enum
// knob; ok is false when the knob is absent or not an enum.
func (c Config) EnumValue(name string) (v int, ok bool) {
	for i, k := range c.space.knobs {
		if k.Name() == name {
			if ek, okk := k.(*EnumKnob); okk {
				return ek.Value(c.Index[i]), true
			}
			return 0, false
		}
	}
	return 0, false
}
