package space

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Knob is one tunable dimension of a configuration space. A knob exposes a
// finite option list; configurations select one option per knob.
type Knob interface {
	// Name identifies the knob ("tile_f", "auto_unroll_max_step", ...).
	Name() string
	// Len returns the number of options.
	Len() int
	// Feature appends the log-scaled value features of option i to dst and
	// returns the extended slice. These feed the learned cost model.
	Feature(dst []float64, i int) []float64
	// FeatureDim returns the number of features Feature appends.
	FeatureDim() int
	// Describe renders option i for logs and records.
	Describe(i int) string
}

// SplitKnob is a multi-way tile-split knob: each option is an ordered
// factorization of Extent into Parts factors, mirroring AutoTVM's
// define_split. For a conv2d CUDA template the four parts of an axis map to
// (blockIdx, virtual thread, threadIdx, inner-serial).
type SplitKnob struct {
	name    string
	extent  int
	parts   int
	options [][]int
}

// NewSplitKnob builds a split knob over all ordered factorizations.
//
// Options are ordered for index-space locality: adjacent option indices
// differ primarily in the performance-light factors (block count, virtual
// threads) and only across longer index distances in the heavy ones
// (thread count, inner serial extent). This makes the Euclidean
// index-space neighborhoods of the paper's BAO semantically meaningful:
// a small index move is a small schedule change.
func NewSplitKnob(name string, extent, parts int) *SplitKnob {
	opts := Factorizations(extent, parts)
	prio := localityPriority(parts)
	sort.SliceStable(opts, func(i, j int) bool {
		a, b := opts[i], opts[j]
		for _, p := range prio {
			if a[p] != b[p] {
				return a[p] < b[p]
			}
		}
		return false
	})
	return &SplitKnob{
		name:    name,
		extent:  extent,
		parts:   parts,
		options: opts,
	}
}

// localityPriority returns the factor positions ordered from most to least
// performance-critical for the CUDA-style [block, vthread, thread, inner]
// split convention; sorting options by this key groups similar schedules
// at nearby indices.
func localityPriority(parts int) []int {
	switch parts {
	case 4:
		return []int{2, 3, 1, 0} // thread, inner, vthread, block
	case 3:
		return []int{1, 2, 0}
	case 2:
		return []int{1, 0} // inner, outer
	default:
		out := make([]int, parts)
		for i := range out {
			out[i] = i
		}
		return out
	}
}

// Name implements Knob.
func (k *SplitKnob) Name() string { return k.name }

// Len implements Knob.
func (k *SplitKnob) Len() int { return len(k.options) }

// Extent returns the axis length being split.
func (k *SplitKnob) Extent() int { return k.extent }

// Parts returns the number of split factors.
func (k *SplitKnob) Parts() int { return k.parts }

// Factors returns the factor tuple of option i. The returned slice is owned
// by the knob and must not be modified.
func (k *SplitKnob) Factors(i int) []int { return k.options[i] }

// Feature implements Knob: log2 of each factor.
func (k *SplitKnob) Feature(dst []float64, i int) []float64 {
	for _, f := range k.options[i] {
		dst = append(dst, math.Log2(float64(f)))
	}
	return dst
}

// FeatureDim implements Knob.
func (k *SplitKnob) FeatureDim() int { return k.parts }

// Describe implements Knob.
func (k *SplitKnob) Describe(i int) string {
	parts := make([]string, len(k.options[i]))
	for j, f := range k.options[i] {
		parts[j] = fmt.Sprintf("%d", f)
	}
	return "[" + strings.Join(parts, ",") + "]"
}

// EnumKnob is a knob over an explicit integer value list (unroll depths,
// boolean flags, vector widths).
type EnumKnob struct {
	name   string
	values []int
}

// NewEnumKnob builds an enumerated knob; values are used in listed order.
func NewEnumKnob(name string, values ...int) *EnumKnob {
	if len(values) == 0 {
		//lint:ignore panicpath space-definition invariant: an empty knob is a programmer error in a template definition
		panic("space: EnumKnob requires at least one value")
	}
	v := make([]int, len(values))
	copy(v, values)
	return &EnumKnob{name: name, values: v}
}

// Name implements Knob.
func (k *EnumKnob) Name() string { return k.name }

// Len implements Knob.
func (k *EnumKnob) Len() int { return len(k.values) }

// Value returns the integer value of option i.
func (k *EnumKnob) Value(i int) int { return k.values[i] }

// Feature implements Knob: log2(1+value) keeps 0-valued options finite.
func (k *EnumKnob) Feature(dst []float64, i int) []float64 {
	return append(dst, math.Log2(1+float64(k.values[i])))
}

// FeatureDim implements Knob.
func (k *EnumKnob) FeatureDim() int { return 1 }

// Describe implements Knob.
func (k *EnumKnob) Describe(i int) string { return fmt.Sprintf("%d", k.values[i]) }
