package space

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/tensor"
)

func testSpace() *Space {
	return New(
		NewSplitKnob("tile_a", 16, 2), // 5 options
		NewSplitKnob("tile_b", 8, 2),  // 4 options
		NewEnumKnob("unroll", 0, 512, 1500),
		NewEnumKnob("flag", 0, 1),
	)
}

func TestSpaceSize(t *testing.T) {
	s := testSpace()
	if s.Size() != 5*4*3*2 {
		t.Fatalf("Size = %d", s.Size())
	}
	if s.NumKnobs() != 4 {
		t.Fatalf("NumKnobs = %d", s.NumKnobs())
	}
	if s.FeatureDim() != 2+2+1+1 {
		t.Fatalf("FeatureDim = %d", s.FeatureDim())
	}
}

func TestFlatRoundTrip(t *testing.T) {
	s := testSpace()
	for f := uint64(0); f < s.Size(); f++ {
		c := s.FromFlat(f)
		if c.Flat() != f {
			t.Fatalf("round trip %d -> %v -> %d", f, c.Index, c.Flat())
		}
	}
	// Modulo wrapping of out-of-range flats.
	if s.FromFlat(s.Size()).Flat() != 0 {
		t.Fatal("flat should wrap modulo size")
	}
}

func TestFromIndicesValidation(t *testing.T) {
	s := testSpace()
	if _, err := s.FromIndices([]int{0, 0, 0}); err == nil {
		t.Fatal("wrong arity should error")
	}
	if _, err := s.FromIndices([]int{5, 0, 0, 0}); err == nil {
		t.Fatal("out-of-range index should error")
	}
	c, err := s.FromIndices([]int{4, 3, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if c.Flat() != s.Size()-1 {
		t.Fatalf("last config flat = %d", c.Flat())
	}
}

func TestRandomSampleUnique(t *testing.T) {
	s := testSpace()
	rng := rand.New(rand.NewSource(1))
	got := s.RandomSample(20, rng)
	if len(got) != 20 {
		t.Fatalf("len = %d", len(got))
	}
	seen := make(map[uint64]bool)
	for _, c := range got {
		if seen[c.Flat()] {
			t.Fatal("duplicate in sample")
		}
		seen[c.Flat()] = true
	}
	// Request more than the space: returns every config exactly once.
	all := s.RandomSample(int(s.Size())*2, rng)
	if uint64(len(all)) != s.Size() {
		t.Fatalf("oversized sample returned %d of %d", len(all), s.Size())
	}
}

func TestConfigAccessors(t *testing.T) {
	s := testSpace()
	c := s.FromFlat(37)
	if fa := c.SplitFactors("tile_a"); fa == nil || fa[0]*fa[1] != 16 {
		t.Fatalf("SplitFactors(tile_a) = %v", fa)
	}
	if c.SplitFactors("unroll") != nil {
		t.Fatal("enum knob should yield nil split factors")
	}
	if c.SplitFactors("missing") != nil {
		t.Fatal("missing knob should yield nil")
	}
	if v, ok := c.EnumValue("unroll"); !ok || (v != 0 && v != 512 && v != 1500) {
		t.Fatalf("EnumValue(unroll) = %d, %v", v, ok)
	}
	if _, ok := c.EnumValue("tile_a"); ok {
		t.Fatal("split knob should not yield enum value")
	}
	if _, ok := c.EnumValue("missing"); ok {
		t.Fatal("missing knob should not yield enum value")
	}
	if c.String() == "" {
		t.Fatal("String should render")
	}
	d := c.Clone()
	d.Index[0] = (d.Index[0] + 1) % 5
	if c.Equal(d) {
		t.Fatal("mutated clone should differ")
	}
	if !c.Equal(c.Clone()) {
		t.Fatal("clone should be equal")
	}
}

func TestFeatureVector(t *testing.T) {
	s := testSpace()
	c := s.FromFlat(0)
	f := c.Features()
	if len(f) != s.FeatureDim() {
		t.Fatalf("feature len = %d, want %d", len(f), s.FeatureDim())
	}
	iv := c.IndexVec()
	if len(iv) != s.NumKnobs() {
		t.Fatalf("index vec len = %d", len(iv))
	}
	for _, v := range iv {
		if v != 0 {
			t.Fatal("flat 0 should be all-zero indices")
		}
	}
}

func TestKnobByName(t *testing.T) {
	s := testSpace()
	if s.KnobByName("tile_a") == nil || s.KnobByName("nope") != nil {
		t.Fatal("KnobByName wrong")
	}
	if s.Knob(2).Name() != "unroll" {
		t.Fatal("Knob(i) wrong")
	}
}

func TestSplitKnobAccessors(t *testing.T) {
	k := NewSplitKnob("k", 12, 3)
	if k.Extent() != 12 || k.Parts() != 3 {
		t.Fatal("extent/parts wrong")
	}
	if k.Len() != CountFactorizations(12, 3) {
		t.Fatal("Len mismatch")
	}
	if k.Describe(0) == "" {
		t.Fatal("describe empty")
	}
	for i := 0; i < k.Len(); i++ {
		fs := k.Factors(i)
		p := 1
		for _, f := range fs {
			p *= f
		}
		if p != 12 {
			t.Fatalf("option %d product %d", i, p)
		}
	}
}

func TestEnumKnobPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewEnumKnob("empty")
}

func TestNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on empty knob list")
		}
	}()
	New()
}

func TestForWorkloadConv(t *testing.T) {
	w := tensor.Conv2D(1, 64, 56, 56, 64, 3, 1, 1)
	s, err := ForWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumKnobs() != 8 {
		t.Fatalf("conv knobs = %d", s.NumKnobs())
	}
	if s.Size() < 1_000_000 {
		t.Fatalf("conv space too small: %d", s.Size())
	}
	if s.KnobByName(KnobTileF) == nil || s.KnobByName(KnobAutoUnroll) == nil {
		t.Fatal("expected knob names missing")
	}
}

func TestForWorkloadScale(t *testing.T) {
	// MobileNet conv1: the paper says nodes average >50M configurations.
	w := tensor.Conv2D(1, 3, 224, 224, 32, 3, 2, 1)
	s, err := ForWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	if s.Size() < 10_000_000 {
		t.Fatalf("MobileNet conv1 space = %d, want >= 10M", s.Size())
	}
}

func TestForWorkloadDepthwiseAndDense(t *testing.T) {
	dw, err := ForWorkload(tensor.DepthwiseConv2D(1, 32, 112, 112, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	if dw.NumKnobs() != 5 {
		t.Fatalf("depthwise knobs = %d", dw.NumKnobs())
	}
	d, err := ForWorkload(tensor.Dense(1, 4096, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if d.NumKnobs() != 4 {
		t.Fatalf("dense knobs = %d", d.NumKnobs())
	}
	if _, err := ForWorkload(tensor.Workload{Op: tensor.OpKind(9), N: 1, C: 1, F: 1}); err == nil {
		t.Fatal("unknown op should error")
	}
	if _, err := ForWorkload(tensor.Conv2D(0, 3, 8, 8, 8, 3, 1, 1)); err == nil {
		t.Fatal("invalid workload should error")
	}
}

// Property: flat round-trip holds for random flats on a realistic space.
func TestFlatRoundTripProperty(t *testing.T) {
	s, err := ForWorkload(tensor.Conv2D(1, 16, 28, 28, 32, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint64) bool {
		flat := raw % s.Size()
		return s.FromFlat(flat).Flat() == flat
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: Features length always equals FeatureDim and contains no NaN.
func TestFeaturesWellFormedProperty(t *testing.T) {
	s, err := ForWorkload(tensor.DepthwiseConv2D(1, 64, 56, 56, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw uint64) bool {
		c := s.FromFlat(raw % s.Size())
		fv := c.Features()
		if len(fv) != s.FeatureDim() {
			return false
		}
		for _, v := range fv {
			if v != v || v < 0 { // NaN or negative log2 of factor >= 1
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}
