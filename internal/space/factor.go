// Package space models AutoTVM-style schedule configuration spaces: products
// of discrete knobs (multi-way tile splits over integer factorizations plus
// enumerated annotation knobs) addressed by mixed-radix flat indices. Spaces
// are never materialized; a space with 10^8 points costs a few kilobytes.
package space

import "sort"

// Divisors returns the positive divisors of n in ascending order.
// It panics for n <= 0.
func Divisors(n int) []int {
	if n <= 0 {
		//lint:ignore panicpath API precondition on compile-time-known workload dims; panics like stdlib math functions
		panic("space: Divisors requires n > 0")
	}
	var small, large []int
	for d := 1; d*d <= n; d++ {
		if n%d == 0 {
			small = append(small, d)
			if d != n/d {
				large = append(large, n/d)
			}
		}
	}
	for i := len(large) - 1; i >= 0; i-- {
		small = append(small, large[i])
	}
	return small
}

// Factorizations returns every ordered way to write n as a product of
// exactly parts positive integers. The result is deterministic: options are
// generated in lexicographic order of the factor tuples. It panics for
// n <= 0 or parts <= 0.
//
// The count equals prod_over_primes C(e_p + parts - 1, parts - 1), so even
// n = 4096 with parts = 4 yields only 455 options while the cross product of
// several such knobs reaches the paper's 10^7..10^8-point spaces.
func Factorizations(n, parts int) [][]int {
	if n <= 0 || parts <= 0 {
		//lint:ignore panicpath API precondition on compile-time-known workload dims; panics like stdlib math functions
		panic("space: Factorizations requires n > 0 and parts > 0")
	}
	if parts == 1 {
		return [][]int{{n}}
	}
	var out [][]int
	cur := make([]int, parts)
	var rec func(rem, pos int)
	rec = func(rem, pos int) {
		if pos == parts-1 {
			cur[pos] = rem
			opt := make([]int, parts)
			copy(opt, cur)
			out = append(out, opt)
			return
		}
		for _, d := range Divisors(rem) {
			cur[pos] = d
			rec(rem/d, pos+1)
		}
	}
	rec(n, 0)
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		for k := range a {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return false
	})
	return out
}

// CountFactorizations returns len(Factorizations(n, parts)) without
// materializing them, via the prime-exponent stars-and-bars product.
func CountFactorizations(n, parts int) int {
	if n <= 0 || parts <= 0 {
		//lint:ignore panicpath API precondition on compile-time-known workload dims; panics like stdlib math functions
		panic("space: CountFactorizations requires n > 0 and parts > 0")
	}
	count := 1
	m := n
	for p := 2; p*p <= m; p++ {
		if m%p != 0 {
			continue
		}
		e := 0
		for m%p == 0 {
			m /= p
			e++
		}
		count *= binomial(e+parts-1, parts-1)
	}
	if m > 1 {
		count *= binomial(1+parts-1, parts-1)
	}
	return count
}

func binomial(n, k int) int {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1
	for i := 0; i < k; i++ {
		r = r * (n - i) / (i + 1)
	}
	return r
}
