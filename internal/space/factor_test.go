package space

import (
	"testing"
	"testing/quick"
)

func TestDivisors(t *testing.T) {
	cases := []struct {
		n    int
		want []int
	}{
		{1, []int{1}},
		{7, []int{1, 7}},
		{12, []int{1, 2, 3, 4, 6, 12}},
		{64, []int{1, 2, 4, 8, 16, 32, 64}},
	}
	for _, c := range cases {
		got := Divisors(c.n)
		if len(got) != len(c.want) {
			t.Fatalf("Divisors(%d) = %v", c.n, got)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("Divisors(%d) = %v, want %v", c.n, got, c.want)
			}
		}
	}
}

func TestDivisorsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	Divisors(0)
}

func TestFactorizationsSmall(t *testing.T) {
	got := Factorizations(4, 2)
	want := [][]int{{1, 4}, {2, 2}, {4, 1}}
	if len(got) != len(want) {
		t.Fatalf("Factorizations(4,2) = %v", got)
	}
	for i := range got {
		for j := range got[i] {
			if got[i][j] != want[i][j] {
				t.Fatalf("Factorizations(4,2) = %v, want %v", got, want)
			}
		}
	}
	if len(Factorizations(7, 1)) != 1 {
		t.Fatal("single-part factorization should be unique")
	}
}

func TestFactorizationsProductInvariant(t *testing.T) {
	for _, n := range []int{12, 56, 64, 100} {
		for parts := 2; parts <= 4; parts++ {
			opts := Factorizations(n, parts)
			seen := make(map[string]bool)
			for _, o := range opts {
				p := 1
				key := ""
				for _, f := range o {
					p *= f
					key += string(rune(f)) + ","
				}
				if p != n {
					t.Fatalf("factorization %v of %d has product %d", o, n, p)
				}
				if seen[key] {
					t.Fatalf("duplicate factorization %v", o)
				}
				seen[key] = true
			}
		}
	}
}

func TestCountFactorizationsMatchesEnumeration(t *testing.T) {
	for _, n := range []int{1, 2, 12, 56, 64, 112, 224, 255, 1000} {
		for parts := 1; parts <= 4; parts++ {
			want := len(Factorizations(n, parts))
			got := CountFactorizations(n, parts)
			if got != want {
				t.Fatalf("CountFactorizations(%d,%d) = %d, want %d", n, parts, got, want)
			}
		}
	}
}

func TestCountFactorizationsKnownValues(t *testing.T) {
	// 2^6 into 4 parts: C(9,3) = 84.
	if got := CountFactorizations(64, 4); got != 84 {
		t.Fatalf("CountFactorizations(64,4) = %d, want 84", got)
	}
	// 112 = 2^4 * 7 into 4 parts: C(7,3)*C(4,3) = 35*4 = 140.
	if got := CountFactorizations(112, 4); got != 140 {
		t.Fatalf("CountFactorizations(112,4) = %d, want 140", got)
	}
}

func TestBinomial(t *testing.T) {
	cases := []struct{ n, k, want int }{
		{5, 2, 10}, {9, 3, 84}, {4, 0, 1}, {4, 4, 1}, {3, 5, 0}, {3, -1, 0},
	}
	for _, c := range cases {
		if got := binomial(c.n, c.k); got != c.want {
			t.Errorf("binomial(%d,%d) = %d, want %d", c.n, c.k, got, c.want)
		}
	}
}

// Property: factorizations are sorted lexicographically and each factor
// divides the extent.
func TestFactorizationsOrderedProperty(t *testing.T) {
	f := func(nRaw, pRaw uint8) bool {
		n := int(nRaw%200) + 1
		parts := int(pRaw%4) + 1
		opts := Factorizations(n, parts)
		for i := 1; i < len(opts); i++ {
			less := false
			for k := range opts[i] {
				if opts[i-1][k] != opts[i][k] {
					less = opts[i-1][k] < opts[i][k]
					break
				}
			}
			if !less {
				return false
			}
		}
		for _, o := range opts {
			for _, fv := range o {
				if n%fv != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
