package space_test

import (
	"fmt"
	"math/rand"

	"repro/internal/space"
	"repro/internal/tensor"
)

// ExampleForWorkload shows how a workload's schedule template expands into
// a configuration space.
func ExampleForWorkload() {
	w := tensor.Conv2D(1, 64, 56, 56, 64, 3, 1, 1)
	sp, err := space.ForWorkload(w)
	if err != nil {
		panic(err)
	}
	fmt.Println("knobs:", sp.NumKnobs())
	fmt.Println("size:", sp.Size())
	// Output:
	// knobs: 8
	// size: 90316800
}

// ExampleSpace_FromFlat demonstrates mixed-radix addressing.
func ExampleSpace_FromFlat() {
	sp := space.New(
		space.NewSplitKnob("tile", 8, 2), // 4 options
		space.NewEnumKnob("unroll", 0, 512),
	)
	c := sp.FromFlat(5)
	fmt.Println(c.Flat(), len(c.Index))
	// Output:
	// 5 2
}

// ExampleSpace_Neighborhood shows the lattice-ball searching scope used by
// the paper's BAO.
func ExampleSpace_Neighborhood() {
	sp := space.New(
		space.NewEnumKnob("a", 0, 1, 2, 3, 4, 5, 6),
		space.NewEnumKnob("b", 0, 1, 2, 3, 4, 5, 6),
	)
	center, _ := sp.FromIndices([]int{3, 3})
	rng := rand.New(rand.NewSource(1))
	nb := sp.Neighborhood(center, 1.5, space.NeighborhoodOpts{}, rng)
	fmt.Println("neighbors:", len(nb))
	// Output:
	// neighbors: 8
}
