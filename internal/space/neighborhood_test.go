package space

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/tensor"
)

func TestLatticeBallCount(t *testing.T) {
	// 1-D radius 3: {-3..3} = 7 points.
	if got := latticeBallCount(1, 9); got != 7 {
		t.Fatalf("1-D count = %d, want 7", got)
	}
	// 2-D radius 1: origin + 4 axis neighbors = 5.
	if got := latticeBallCount(2, 1); got != 5 {
		t.Fatalf("2-D r=1 count = %d, want 5", got)
	}
	// 2-D radius sqrt(2): 3x3 box = 9.
	if got := latticeBallCount(2, 2); got != 9 {
		t.Fatalf("2-D r2=2 count = %d, want 9", got)
	}
	// Brute force cross-check in 3-D, r=2.5.
	r2 := 2.5 * 2.5
	want := int64(0)
	for a := -2; a <= 2; a++ {
		for b := -2; b <= 2; b++ {
			for c := -2; c <= 2; c++ {
				if float64(a*a+b*b+c*c) <= r2 {
					want++
				}
			}
		}
	}
	if got := latticeBallCount(3, r2); got != want {
		t.Fatalf("3-D count = %d, want %d", got, want)
	}
}

func TestNeighborhoodExact(t *testing.T) {
	s := New(
		NewEnumKnob("a", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
		NewEnumKnob("b", 0, 1, 2, 3, 4, 5, 6, 7, 8, 9),
	)
	center, _ := s.FromIndices([]int{5, 5})
	rng := rand.New(rand.NewSource(1))
	got := s.Neighborhood(center, 1.5, NeighborhoodOpts{}, rng)
	// r=1.5 in 2-D: offsets with d2 <= 2.25: the 8-neighborhood.
	if len(got) != 8 {
		t.Fatalf("neighborhood size = %d, want 8", len(got))
	}
	for _, c := range got {
		d := linalg.Dist(c.IndexVec(), center.IndexVec())
		if d > 1.5 || d == 0 {
			t.Fatalf("config at distance %v", d)
		}
	}
}

func TestNeighborhoodClamping(t *testing.T) {
	s := New(NewEnumKnob("a", 0, 1, 2), NewEnumKnob("b", 0, 1, 2))
	corner, _ := s.FromIndices([]int{0, 0})
	rng := rand.New(rand.NewSource(1))
	got := s.Neighborhood(corner, 1.5, NeighborhoodOpts{}, rng)
	// Only offsets into the valid quadrant survive: (0,1),(1,0),(1,1).
	if len(got) != 3 {
		t.Fatalf("corner neighborhood = %d, want 3", len(got))
	}
}

func TestNeighborhoodExclude(t *testing.T) {
	s := New(NewEnumKnob("a", 0, 1, 2, 3, 4), NewEnumKnob("b", 0, 1, 2, 3, 4))
	center, _ := s.FromIndices([]int{2, 2})
	rng := rand.New(rand.NewSource(1))
	all := s.Neighborhood(center, 1.0, NeighborhoodOpts{}, rng)
	if len(all) != 4 {
		t.Fatalf("r=1 neighborhood = %d, want 4", len(all))
	}
	ex := map[uint64]bool{all[0].Flat(): true}
	got := s.Neighborhood(center, 1.0, NeighborhoodOpts{Exclude: ex}, rng)
	if len(got) != 3 {
		t.Fatalf("excluded neighborhood = %d, want 3", len(got))
	}
}

func TestNeighborhoodZeroRadius(t *testing.T) {
	s := testSpace()
	rng := rand.New(rand.NewSource(1))
	if got := s.Neighborhood(s.FromFlat(0), 0, NeighborhoodOpts{}, rng); got != nil {
		t.Fatal("zero radius should return nil")
	}
}

func TestNeighborhoodCap(t *testing.T) {
	s, err := ForWorkload(tensor.Conv2D(1, 64, 56, 56, 128, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	center := s.Random(rng)
	// Move the center inward so the ball is not mostly clipped.
	for i := range center.Index {
		if center.Index[i] == 0 {
			center.Index[i] = s.Knob(i).Len() / 2
		}
	}
	got := s.Neighborhood(center, 4.5, NeighborhoodOpts{MaxCandidates: 500}, rng)
	if len(got) == 0 || len(got) > 500 {
		t.Fatalf("capped neighborhood size = %d", len(got))
	}
	seen := make(map[uint64]bool)
	for _, c := range got {
		f := c.Flat()
		if seen[f] {
			t.Fatal("duplicate candidate")
		}
		seen[f] = true
		if d := linalg.Dist(c.IndexVec(), center.IndexVec()); d > 4.5+1e-9 {
			t.Fatalf("candidate outside ball: %v", d)
		}
	}
}

func TestNeighborhoodLargeRadiusSampled(t *testing.T) {
	// 8 knobs with 1000 options each: the ball at r=4.5 is far larger than
	// the cap, exercising the rejection-sampling path.
	vals := make([]int, 1000)
	for i := range vals {
		vals[i] = i
	}
	knobs := make([]Knob, 8)
	for i := range knobs {
		knobs[i] = NewEnumKnob("k"+string(rune('a'+i)), vals...)
	}
	s := New(knobs...)
	idx := []int{500, 500, 500, 500, 500, 500, 500, 500}
	center, _ := s.FromIndices(idx)
	rng := rand.New(rand.NewSource(3))
	got := s.Neighborhood(center, 4.5, NeighborhoodOpts{MaxCandidates: 1000}, rng)
	if len(got) != 1000 {
		t.Fatalf("sampled neighborhood = %d, want 1000", len(got))
	}
	for _, c := range got {
		d := linalg.Dist(c.IndexVec(), center.IndexVec())
		if d > 4.5 || d == 0 {
			t.Fatalf("sampled candidate at distance %v", d)
		}
	}
}

func TestNeighborhoodDeterministicEnumeration(t *testing.T) {
	s := New(NewEnumKnob("a", 0, 1, 2, 3, 4, 5, 6), NewEnumKnob("b", 0, 1, 2, 3, 4, 5, 6))
	center, _ := s.FromIndices([]int{3, 3})
	a := s.Neighborhood(center, 2, NeighborhoodOpts{}, rand.New(rand.NewSource(1)))
	b := s.Neighborhood(center, 2, NeighborhoodOpts{}, rand.New(rand.NewSource(99)))
	if len(a) != len(b) {
		t.Fatal("enumerated neighborhoods differ in size")
	}
	for i := range a {
		if !a[i].Equal(b[i]) {
			t.Fatal("enumerated neighborhood should be rng-independent")
		}
	}
}

func TestNeighborhoodGrowth(t *testing.T) {
	// Enlarging the radius tau*R must not shrink the candidate set
	// (the adaptive step of Algorithm 4 relies on this).
	s, err := ForWorkload(tensor.DepthwiseConv2D(1, 128, 56, 56, 3, 1, 1))
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	center := s.Random(rng)
	small := s.Neighborhood(center, 3, NeighborhoodOpts{MaxCandidates: math.MaxInt32}, rng)
	large := s.Neighborhood(center, 4.5, NeighborhoodOpts{MaxCandidates: math.MaxInt32}, rng)
	if len(large) < len(small) {
		t.Fatalf("tau*R ball (%d) smaller than R ball (%d)", len(large), len(small))
	}
}
