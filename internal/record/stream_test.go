package record

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestStreamWriterRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	recs := []Record{
		{Task: "t", Workload: "w", Tuner: "random", Step: 1, Config: []int{0, 1}, GFLOPS: 10, Valid: true},
		{Task: "t", Workload: "w", Tuner: "random", Step: 2, Config: []int{1, 0}, Valid: false},
	}
	for _, r := range recs {
		if err := sw.Append(r); err != nil {
			t.Fatal(err)
		}
	}
	if sw.Count() != 2 {
		t.Fatalf("count = %d", sw.Count())
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != 2 || loaded[0].GFLOPS != 10 || loaded[1].Valid {
		t.Fatalf("round trip lost data: %+v", loaded)
	}
}

// failWriter fails every write after the first n bytes.
type failWriter struct{ left int }

var errSink = errors.New("sink failed")

func (f *failWriter) Write(p []byte) (int, error) {
	if f.left <= 0 {
		return 0, errSink
	}
	n := len(p)
	if n > f.left {
		n = f.left
	}
	f.left -= n
	if n < len(p) {
		return n, errSink
	}
	return n, nil
}

func TestStreamWriterLatchesFirstError(t *testing.T) {
	sw := NewStreamWriter(&failWriter{left: 4})
	rec := Record{Task: "t", Workload: "w", Step: 1, Config: []int{0}}
	var first error
	// Keep appending until the tiny sink overflows; buffering may absorb a
	// few records before the error surfaces.
	for i := 0; i < 10_000 && first == nil; i++ {
		if err := sw.Append(rec); err != nil {
			first = err
		} else if err := sw.Flush(); err != nil {
			first = err
		}
	}
	if !errors.Is(first, errSink) {
		t.Fatalf("sink error never surfaced: %v", first)
	}
	if err := sw.Append(rec); !errors.Is(err, errSink) {
		t.Fatalf("later append must return the latched error, got %v", err)
	}
	if err := sw.Flush(); !errors.Is(err, errSink) {
		t.Fatalf("later flush must return the latched error, got %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "summary.txt")
	if err := WriteFileAtomic(path, []byte("first\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := WriteFileAtomic(path, []byte("second\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "second\n" {
		t.Fatalf("content = %q", data)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.HasPrefix(e.Name(), ".") || e.Name() != "summary.txt" {
			t.Fatalf("temp file left behind: %q", e.Name())
		}
	}
}

func TestTruncatePrefix(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "log.jsonl")
	recs := make([]Record, 5)
	for i := range recs {
		recs[i] = Record{Task: "t", Workload: "w", Tuner: "random", Step: i + 1, Config: []int{i}, GFLOPS: float64(i), Valid: true}
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	// A torn final line (crash mid-append) must not count as a record.
	if err := os.WriteFile(path, append(buf.Bytes(), []byte(`{"task":"t","wo`)...), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := TruncatePrefix(path, 3); err != nil {
		t.Fatal(err)
	}
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	got, err := Read(f)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2].Step != 3 {
		t.Fatalf("truncated log = %+v", got)
	}
	if err := TruncatePrefix(path, 4); err == nil {
		t.Fatal("rewinding past the end of the log must error")
	}
	if err := TruncatePrefix(filepath.Join(dir, "missing.jsonl"), 0); err == nil {
		t.Fatal("truncating a missing log must error")
	}
}

func TestStreamWriterAtContinuesCount(t *testing.T) {
	var buf bytes.Buffer
	sw := NewStreamWriterAt(&buf, 7)
	if sw.Count() != 7 {
		t.Fatalf("initial count = %d, want 7", sw.Count())
	}
	if err := sw.Append(Record{Task: "t", Workload: "w", Step: 8, Config: []int{0}}); err != nil {
		t.Fatal(err)
	}
	if sw.Count() != 8 {
		t.Fatalf("count after append = %d, want 8", sw.Count())
	}
}

func TestWriteFileAtomicBadDir(t *testing.T) {
	err := WriteFileAtomic(filepath.Join(t.TempDir(), "missing", "f.txt"), []byte("x"), 0o644)
	if err == nil {
		t.Fatal("write into a missing directory must error")
	}
}
