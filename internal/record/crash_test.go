package record

import (
	"bytes"
	"strings"
	"testing"
)

// crashLog streams n records and then simulates a crash by truncating the
// flushed bytes mid-way through the final line.
func crashLog(t *testing.T, n, cut int) []byte {
	t.Helper()
	var buf bytes.Buffer
	sw := NewStreamWriter(&buf)
	for i := 1; i <= n; i++ {
		if err := sw.Append(Record{Task: "t", Workload: "w", Tuner: "random",
			Step: i, Config: []int{i, 0}, GFLOPS: float64(i), Valid: true}); err != nil {
			t.Fatal(err)
		}
	}
	if err := sw.Flush(); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	return b[:len(b)-cut]
}

// TestReadTruncatedFinalLine is the crash-recovery contract: a run killed
// mid-Append leaves a partial last line, and Read must hand back the intact
// prefix — the records Resume and backend.Replay can still use — instead of
// refusing the whole log.
func TestReadTruncatedFinalLine(t *testing.T) {
	whole := crashLog(t, 4, 0)
	// Length of the final line including its newline: cuts strictly inside
	// it (cut >= 2 also removes the closing brace, making it malformed).
	lastLen := len(whole) - (bytes.LastIndexByte(whole[:len(whole)-1], '\n') + 1)
	for cut := 2; cut < lastLen; cut += 3 {
		got, err := Read(bytes.NewReader(crashLog(t, 4, cut)))
		if err != nil {
			t.Fatalf("cut=%d: %v", cut, err)
		}
		if len(got) != 3 {
			t.Fatalf("cut=%d: %d records, want the 3-record prefix", cut, len(got))
		}
		for i, r := range got {
			if r.Step != i+1 || r.GFLOPS != float64(i+1) {
				t.Fatalf("cut=%d: prefix corrupted: %+v", cut, r)
			}
		}
	}
}

// TestReadTruncatedFinalLineWithTrailingBlank: trailing blank lines after
// the partial record do not turn the tolerated truncation into an error.
func TestReadTruncatedFinalLineWithTrailingBlank(t *testing.T) {
	log := append(crashLog(t, 3, 5), []byte("\n\n")...)
	got, err := Read(bytes.NewReader(log))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("%d records, want 2", len(got))
	}
}

// TestReadMidFileCorruptionStillFatal: a malformed line with real content
// after it is corruption, not a crash artifact, and must stay an error.
func TestReadMidFileCorruptionStillFatal(t *testing.T) {
	whole := string(crashLog(t, 3, 0))
	lines := strings.SplitAfter(whole, "\n")
	corrupted := lines[0] + "{\"task\":\"t\",\"ste\n" + lines[2]
	if _, err := Read(strings.NewReader(corrupted)); err == nil {
		t.Fatal("mid-file corruption should error")
	}
	if !strings.Contains(whole, "\n") {
		t.Fatal("sanity: log not line-delimited")
	}
}

// TestReadTruncatedOnlyLine: a log that crashed during its very first
// Append loads as empty, not as an error.
func TestReadTruncatedOnlyLine(t *testing.T) {
	got, err := Read(strings.NewReader("{\"task\":\"t\",\"work"))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("%d records from a torn single-line log", len(got))
	}
}
