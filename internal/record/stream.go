package record

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// StreamWriter appends records to a log incrementally, one JSON line per
// measurement, so an interrupted run keeps everything flushed so far. It is
// safe for concurrent use: pipeline observers may fire from whichever
// goroutine folds a batch.
type StreamWriter struct {
	mu    sync.Mutex
	bw    *bufio.Writer
	count int
	err   error
}

// NewStreamWriter wraps w. The caller owns w's lifetime (closing files,
// etc.); Flush forces buffered lines down to it.
func NewStreamWriter(w io.Writer) *StreamWriter {
	return &StreamWriter{bw: bufio.NewWriter(w)}
}

// NewStreamWriterAt is NewStreamWriter for a log that already holds count
// records: a resumed run opens the truncated log in append mode and keeps
// counting from where the interrupted run's checkpoint left off, so batch
// boundaries (Count modulo plan size) land where an uninterrupted run's
// would.
func NewStreamWriterAt(w io.Writer, count int) *StreamWriter {
	s := NewStreamWriter(w)
	s.count = count
	return s
}

// Append encodes one record. After the first failure every later call
// returns the same error, so callers may checkpoint per batch and report
// once.
func (s *StreamWriter) Append(rec Record) error {
	line, err := Line(rec)
	if err != nil {
		s.mu.Lock()
		defer s.mu.Unlock()
		if s.err == nil {
			s.err = fmt.Errorf("record: streaming entry %d: %w", s.count+1, err)
		}
		return s.err
	}
	return s.AppendLine(line)
}

// AppendLine appends an already-encoded wire line (as produced by Line).
// It exists so a caller that encoded the record once can feed the log and
// any number of live subscribers from the same bytes instead of
// re-marshaling per sink.
func (s *StreamWriter) AppendLine(line []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if _, err := s.bw.Write(line); err != nil {
		s.err = fmt.Errorf("record: streaming entry %d: %w", s.count+1, err)
		return s.err
	}
	s.count++
	return nil
}

// Flush pushes buffered lines to the underlying writer — the checkpoint
// boundary an interrupted run recovers to.
func (s *StreamWriter) Flush() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return s.err
	}
	if err := s.bw.Flush(); err != nil {
		s.err = fmt.Errorf("record: flushing stream: %w", err)
		return s.err
	}
	return nil
}

// Count returns how many records were appended successfully.
func (s *StreamWriter) Count() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.count
}

// TruncatePrefix rewrites the log at path down to its first n records,
// discarding measurements recorded after the checkpoint a resuming run is
// rewinding to. The log is read tolerantly (a torn final line from the
// interrupting crash is dropped) but must still hold at least n records —
// a shorter log means it does not belong to the checkpoint's run. The
// rewrite goes through WriteFileAtomic, so a crash mid-truncation leaves
// either the old or the new log, never a blend.
func TruncatePrefix(path string, n int) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("record: truncating %s: %w", path, err)
	}
	recs, err := Read(f)
	closeErr := f.Close()
	if err != nil {
		return fmt.Errorf("record: truncating %s: %w", path, err)
	}
	if closeErr != nil {
		return fmt.Errorf("record: truncating %s: %w", path, closeErr)
	}
	if len(recs) < n {
		return fmt.Errorf("record: %s holds %d records, cannot rewind to %d (log does not match the checkpoint)", path, len(recs), n)
	}
	var buf bytes.Buffer
	if err := Write(&buf, recs[:n]); err != nil {
		return err
	}
	return WriteFileAtomic(path, buf.Bytes(), 0o644)
}

// WriteFileAtomic writes data to path via a temporary file in the same
// directory plus rename, so readers never observe a partially-written
// summary even when the writer is interrupted.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("record: creating temp file in %s: %w", dir, err)
	}
	tmpName := tmp.Name()
	defer func() {
		// Best-effort cleanup of the error paths below; after a successful
		// rename the temp file no longer exists and this is a no-op.
		_ = os.Remove(tmpName)
	}()
	if _, err := tmp.Write(data); err != nil {
		if closeErr := tmp.Close(); closeErr != nil {
			err = fmt.Errorf("%w (and closing: %v)", err, closeErr)
		}
		return fmt.Errorf("record: writing %s: %w", tmpName, err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("record: closing %s: %w", tmpName, err)
	}
	if err := os.Chmod(tmpName, perm); err != nil {
		return fmt.Errorf("record: chmod %s: %w", tmpName, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		return fmt.Errorf("record: renaming %s to %s: %w", tmpName, path, err)
	}
	return nil
}
