package record

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/space"
	"repro/internal/tensor"
)

func sampleRecords() []Record {
	return []Record{
		{Task: "m.T1", Workload: "conv_a", Tuner: "autotvm", Step: 1, Config: []int{0, 1}, GFLOPS: 100, Valid: true},
		{Task: "m.T1", Workload: "conv_a", Tuner: "autotvm", Step: 2, Config: []int{1, 1}, GFLOPS: 250, Valid: true},
		{Task: "m.T1", Workload: "conv_a", Tuner: "autotvm", Step: 3, Config: []int{2, 0}, GFLOPS: 0, Valid: false},
		{Task: "m.T2", Workload: "conv_b", Tuner: "autotvm", Step: 1, Config: []int{3, 2}, GFLOPS: 50, Valid: true},
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	recs := sampleRecords()
	if err := Write(&buf, recs); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, want %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i].Task != recs[i].Task || got[i].GFLOPS != recs[i].GFLOPS ||
			got[i].Valid != recs[i].Valid || len(got[i].Config) != len(recs[i].Config) {
			t.Fatalf("record %d: %+v vs %+v", i, got[i], recs[i])
		}
	}
}

func TestReadSkipsBlankLines(t *testing.T) {
	in := "{\"task\":\"a\",\"valid\":true,\"gflops\":1}\n\n{\"task\":\"b\",\"valid\":true,\"gflops\":2}\n"
	got, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d records", len(got))
	}
}

func TestReadMalformed(t *testing.T) {
	// A malformed line followed by more content is corruption and errors; a
	// malformed final line is a crash-truncated tail and is dropped (the
	// full crash-recovery contract lives in crash_test.go).
	if _, err := Read(strings.NewReader("not json\n{\"task\":\"a\",\"valid\":true}\n")); err == nil {
		t.Fatal("malformed mid-file line should error")
	}
	got, err := Read(strings.NewReader("{\"task\":\"a\",\"valid\":true}\nnot json"))
	if err != nil || len(got) != 1 {
		t.Fatalf("torn final line: got %v, %v", got, err)
	}
}

func TestReadEmpty(t *testing.T) {
	got, err := Read(strings.NewReader(""))
	if err != nil || got != nil {
		t.Fatalf("empty read = %v, %v", got, err)
	}
}

func TestBestByTask(t *testing.T) {
	best := BestByTask(sampleRecords())
	if len(best) != 2 {
		t.Fatalf("best map size %d", len(best))
	}
	if best["m.T1"].GFLOPS != 250 {
		t.Fatalf("T1 best = %v", best["m.T1"].GFLOPS)
	}
	if best["m.T2"].GFLOPS != 50 {
		t.Fatalf("T2 best = %v", best["m.T2"].GFLOPS)
	}
	// Invalid-only records yield no best.
	only := []Record{{Task: "x", Valid: false, GFLOPS: 999}}
	if len(BestByTask(only)) != 0 {
		t.Fatal("invalid records must not become best")
	}
}

func TestToConfig(t *testing.T) {
	w := tensor.Conv2D(1, 16, 28, 28, 32, 3, 1, 1)
	sp, err := space.ForWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	c := sp.FromFlat(12345)
	r := Record{Config: c.Index}
	got, err := r.ToConfig(sp)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(c) {
		t.Fatal("ToConfig mismatch")
	}
	bad := Record{Config: []int{1}}
	if _, err := bad.ToConfig(sp); err == nil {
		t.Fatal("wrong arity should error")
	}
}
