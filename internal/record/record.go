// Package record implements the tuning-log format: one JSON object per
// line, mirroring AutoTVM's measure records. Logs make tuning runs
// resumable, feed the transfer-learning history, and let cmd tools apply
// previously-found best configurations.
package record

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/space"
)

// Record is one measurement entry.
type Record struct {
	Task     string  `json:"task"`     // task name, e.g. "mobilenet-v1.T3"
	Workload string  `json:"workload"` // canonical workload key
	Tuner    string  `json:"tuner"`    // producing algorithm
	Step     int     `json:"step"`     // 1-based measurement index within the run
	Config   []int   `json:"config"`   // knob option indices
	GFLOPS   float64 `json:"gflops"`   // 0 when invalid
	Valid    bool    `json:"valid"`
}

// Line encodes one record to its canonical newline-terminated JSON wire
// form — byte-for-byte what Write and StreamWriter.Append emit
// (json.Encoder is Marshal plus '\n', with the same HTML escaping). It is
// the single wire encoding of a record: the job layer encodes each record
// once at append time and every consumer — log file, SSE frame, replay —
// reuses the same bytes.
func Line(rec Record) ([]byte, error) {
	b, err := json.Marshal(&rec)
	if err != nil {
		return nil, fmt.Errorf("record: encoding line: %w", err)
	}
	return append(b, '\n'), nil
}

// Write encodes records as JSON lines.
func Write(w io.Writer, recs []Record) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range recs {
		if err := enc.Encode(&recs[i]); err != nil {
			return fmt.Errorf("record: encoding entry %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// Read decodes JSON-line records until EOF. Blank lines are skipped, and a
// malformed *final* line is dropped silently: a crash mid-Append leaves a
// truncated last line behind, and the intact prefix is exactly what a
// StreamWriter had checkpointed — so Resume and backend.Replay still load
// everything that was actually measured. A malformed line with more content
// after it is genuine corruption and stays an error.
func Read(r io.Reader) ([]Record, error) {
	var out []Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	line := 0
	var pendingErr error // malformed line seen; fatal unless it stays last
	for sc.Scan() {
		line++
		b := sc.Bytes()
		if len(b) == 0 {
			continue
		}
		if pendingErr != nil {
			return nil, pendingErr
		}
		var rec Record
		if err := json.Unmarshal(b, &rec); err != nil {
			pendingErr = fmt.Errorf("record: line %d: %w", line, err)
			continue
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("record: reading: %w", err)
	}
	return out, nil
}

// BestByTask returns the highest-GFLOPS valid record per task name.
func BestByTask(recs []Record) map[string]Record {
	best := make(map[string]Record)
	for _, r := range recs {
		if !r.Valid {
			continue
		}
		if cur, ok := best[r.Task]; !ok || r.GFLOPS > cur.GFLOPS {
			best[r.Task] = r
		}
	}
	return best
}

// ToConfig rebuilds the record's configuration in the given space.
func (r Record) ToConfig(sp *space.Space) (space.Config, error) {
	return sp.FromIndices(r.Config)
}
