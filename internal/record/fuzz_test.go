package record

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"
)

// fuzzRecords builds a deterministic batch of n records whose fields are
// derived arithmetically from n, so every fuzz execution is reproducible
// without an RNG.
func fuzzRecords(n int) []Record {
	recs := make([]Record, n)
	for i := range recs {
		recs[i] = Record{
			Task:     fmt.Sprintf("task-%d", i%3),
			Workload: fmt.Sprintf("conv2d_%dx%d", 1<<(i%5), 3),
			Tuner:    "bao",
			Step:     i + 1,
			Config:   []int{i % 4, (i * 7) % 5, i % 2},
			GFLOPS:   float64(i) * 1.5,
			Valid:    i%4 != 3,
		}
	}
	return recs
}

// FuzzReadTornTail exercises the crash-recovery contract of Read against
// random truncation, single-byte corruption, and wholly arbitrary input:
//
//   - Read must never panic, whatever the bytes;
//   - truncating a valid stream at ANY byte offset must succeed and return
//     exactly the records whose lines survived intact (a torn final line is
//     a crash artifact, not corruption);
//   - Read must be deterministic: the same bytes always produce the same
//     records and the same error disposition.
func FuzzReadTornTail(f *testing.F) {
	f.Add(uint8(4), uint16(0), uint16(10), byte('}'), []byte("{\"task\":\"t\"}\n"))
	f.Add(uint8(1), uint16(7), uint16(3), byte(0), []byte("\n\n"))
	f.Add(uint8(7), uint16(500), uint16(120), byte('\n'), []byte("not json at all"))
	f.Add(uint8(0), uint16(65535), uint16(65535), byte('"'), []byte{})
	f.Fuzz(func(t *testing.T, n uint8, cut uint16, pos uint16, corrupt byte, raw []byte) {
		recs := fuzzRecords(int(n)%8 + 1)
		var buf bytes.Buffer
		if err := Write(&buf, recs); err != nil {
			t.Fatal(err)
		}
		stream := buf.Bytes()

		// Torn tail: cut anywhere, including 0 (everything lost) and
		// len(stream) (nothing lost). Write emits exactly one
		// newline-terminated line per record with no embedded newlines, so
		// every surviving '\n' marks an intact record. One more is allowed:
		// a cut landing between a record's closing brace and its newline
		// leaves a final unterminated line that is still complete JSON.
		cutAt := int(cut) % (len(stream) + 1)
		truncated := stream[:cutAt]
		intact := bytes.Count(truncated, []byte{'\n'})
		got, err := Read(bytes.NewReader(truncated))
		if err != nil {
			t.Fatalf("torn tail at %d/%d must not be an error, got %v", cutAt, len(stream), err)
		}
		if len(got) != intact && len(got) != intact+1 {
			t.Fatalf("torn tail at %d: got %d records, want the %d intact lines (+1 if the tear hit the final newline)", cutAt, len(got), intact)
		}
		if len(got) > 0 && !reflect.DeepEqual(got, append([]Record(nil), recs[:len(got)]...)) {
			t.Fatalf("torn tail at %d: surviving records are not a prefix of the written records", cutAt)
		}

		// Mid-file corruption: flip one byte anywhere in the stream. The
		// result may be an error (mid-file garbage), a silent drop (the flip
		// hit the final line), or even a still-valid stream (the flip changed
		// a digit) — but it must never panic and must be deterministic.
		corrupted := append([]byte(nil), stream...)
		if len(corrupted) > 0 {
			corrupted[int(pos)%len(corrupted)] = corrupt
		}
		got1, err1 := Read(bytes.NewReader(corrupted))
		got2, err2 := Read(bytes.NewReader(corrupted))
		if (err1 == nil) != (err2 == nil) || !reflect.DeepEqual(got1, got2) {
			t.Fatalf("Read is not deterministic on corrupted input: (%v, %v) vs (%v, %v)", got1, err1, got2, err2)
		}
		if err1 == nil && len(got1) > len(recs)+1 {
			t.Fatalf("corruption conjured %d records from %d written", len(got1), len(recs))
		}

		// Arbitrary bytes, and arbitrary bytes glued after a valid stream:
		// only the no-panic and determinism guarantees apply.
		for _, input := range [][]byte{raw, append(append([]byte(nil), stream...), raw...)} {
			a, errA := Read(bytes.NewReader(input))
			b, errB := Read(bytes.NewReader(input))
			if (errA == nil) != (errB == nil) || !reflect.DeepEqual(a, b) {
				t.Fatalf("Read is not deterministic on arbitrary input")
			}
		}
	})
}
