// Package transfer implements the history-based transfer learning that
// AutoTVM layers onto its cost model: measurements from previously tuned
// tasks of the same operator class warm-start the surrogate of a new task,
// so the first model of a fresh task is not trained from scratch.
//
// Transferability rests on two facts about the schedule templates: (a) all
// tasks of one operator class share the same knob structure, hence the same
// feature dimensionality, and (b) relative preferences (large inner tiles,
// warp-multiple thread counts) carry across shapes even when absolute
// GFLOPS do not. Targets are therefore rank-normalized per source task
// before mixing.
package transfer

import (
	"sort"
	"sync"

	"repro/internal/active"
	"repro/internal/tensor"
)

// entry is one task's contributed history.
type entry struct {
	task string
	op   tensor.OpKind
	X    [][]float64
	y    []float64 // rank-normalized to [0, 1]
}

// History accumulates cross-task knowledge. It is safe for concurrent use.
type History struct {
	mu      sync.Mutex
	entries []entry
}

// NewHistory returns an empty history.
func NewHistory() *History { return &History{} }

// Add contributes the valid samples of a finished tuning run under the
// given task key. Invalid samples are recorded with target exactly 0 (they
// teach the model which regions fail to launch); valid samples get their
// rank among the valid set mapped to (0, 1] with the best at 1 — the scale
// contract of transferTargets.
func (h *History) Add(task string, op tensor.OpKind, samples []active.Sample) {
	if len(samples) == 0 {
		return
	}
	X := make([][]float64, 0, len(samples))
	for _, s := range samples {
		X = append(X, s.Config.Features())
	}
	y := transferTargets(samples)
	h.mu.Lock()
	defer h.mu.Unlock()
	h.entries = append(h.entries, entry{task: task, op: op, X: X, y: y})
}

// transferTargets maps samples onto the target scale cost models use for
// their own observations (GFLOPS normalized by the task best: invalid = 0,
// valid in (0, 1] with the best at 1). Absolute GFLOPS do not transfer
// across shapes, so valid samples contribute their average rank among the
// valid set, mapped to (0, 1]; invalid samples contribute exactly 0 rather
// than a tied low rank — previously a run with many failures assigned
// failing regions a strictly positive averaged rank (e.g. 0.25 with half
// the samples invalid), teaching warm-started models that launch failures
// were mediocre rather than worthless.
func transferTargets(samples []active.Sample) []float64 {
	validVals := make([]float64, 0, len(samples))
	for _, s := range samples {
		if s.Valid {
			validVals = append(validVals, s.GFLOPS)
		}
	}
	out := make([]float64, len(samples))
	if len(validVals) == 0 {
		return out
	}
	// rankNormalize spans [0, 1]; shift to (0, 1] so the worst valid sample
	// still outranks a launch failure.
	ranks := rankNormalize(validVals)
	nv := float64(len(validVals))
	vi := 0
	for i, s := range samples {
		if !s.Valid {
			continue
		}
		out[i] = (ranks[vi]*(nv-1) + 1) / nv
		vi++
	}
	return out
}

// Clone returns an independent snapshot of the history. Entries are
// immutable once added (WarmStart copies rows on read), so the snapshot
// shares their backing storage; only the entry list itself is copied.
// The graph scheduler clones the master history at round boundaries so
// concurrently tuned tasks all warm-start from the same schedule-
// deterministic state.
func (h *History) Clone() *History {
	nh := NewHistory()
	nh.CopyFrom(h)
	return nh
}

// CopyFrom replaces this history's contents with a snapshot of src. It is
// the round-boundary sync primitive: a per-task view is refreshed from the
// master without disturbing readers holding rows already handed out.
func (h *History) CopyFrom(src *History) {
	src.mu.Lock()
	es := append([]entry(nil), src.entries...)
	src.mu.Unlock()
	h.mu.Lock()
	h.entries = es
	h.mu.Unlock()
}

// NumTasks returns how many task histories have been recorded.
func (h *History) NumTasks() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.entries)
}

// WarmStart assembles up to limit transferred training pairs for a new
// task of the given operator kind, excluding history from excludeTask
// (usually the task itself on re-tunes). The newest histories contribute
// first. Returned slices are copies and safe to mutate.
func (h *History) WarmStart(op tensor.OpKind, excludeTask string, limit int) ([][]float64, []float64) {
	if limit <= 0 {
		return nil, nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var X [][]float64
	var y []float64
	for i := len(h.entries) - 1; i >= 0 && len(X) < limit; i-- {
		e := h.entries[i]
		if e.op != op || e.task == excludeTask {
			continue
		}
		for j := range e.X {
			if len(X) >= limit {
				break
			}
			row := make([]float64, len(e.X[j]))
			copy(row, e.X[j])
			X = append(X, row)
			y = append(y, e.y[j])
		}
	}
	return X, y
}

// rankNormalize maps values to their normalized rank in [0, 1] (average
// rank for ties), making targets comparable across tasks whose absolute
// GFLOPS differ by orders of magnitude.
func rankNormalize(vals []float64) []float64 {
	n := len(vals)
	if n == 1 {
		return []float64{0.5}
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return vals[idx[a]] < vals[idx[b]] })
	out := make([]float64, n)
	i := 0
	for i < n {
		j := i
		//lint:ignore floateq tie grouping over stored GFLOPS values; ranks must treat bitwise-equal measurements identically
		for j+1 < n && vals[idx[j+1]] == vals[idx[i]] {
			j++
		}
		avgRank := float64(i+j) / 2
		norm := avgRank / float64(n-1)
		for k := i; k <= j; k++ {
			out[idx[k]] = norm
		}
		i = j + 1
	}
	return out
}
