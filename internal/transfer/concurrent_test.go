package transfer

import (
	"fmt"
	"sync"
	"testing"

	"repro/internal/tensor"
)

// TestHistoryConcurrentAddAndWarmStart mixes writers (Add) and readers
// (WarmStart, NumTasks) on one History, the sharing pattern of parallel
// per-task tuning sessions feeding a global transfer store. Under -race
// this validates the lock; in any mode every contribution must be visible
// afterwards.
func TestHistoryConcurrentAddAndWarmStart(t *testing.T) {
	h := NewHistory()
	w := tensor.Conv2D(1, 16, 28, 28, 32, 3, 1, 1)
	samples := makeSamples(t, w, 20, 9)

	const workers = 8
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			h.Add(fmt.Sprintf("task-%d", g), tensor.OpConv2D, samples)
			X, y := h.WarmStart(tensor.OpConv2D, "", 30)
			if len(X) != len(y) {
				t.Errorf("warm start returned %d rows but %d targets", len(X), len(y))
			}
			_ = h.NumTasks()
		}(g)
	}
	wg.Wait()

	if got := h.NumTasks(); got != workers {
		t.Fatalf("NumTasks = %d, want %d (a lost entry means Add raced)", got, workers)
	}
	X, y := h.WarmStart(tensor.OpConv2D, "", workers*len(samples))
	if len(X) != workers*len(samples) || len(y) != len(X) {
		t.Fatalf("final warm start returned %d/%d pairs, want %d", len(X), len(y), workers*len(samples))
	}
}
