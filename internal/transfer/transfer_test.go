package transfer

import (
	"math/rand"
	"testing"

	"repro/internal/active"
	"repro/internal/space"
	"repro/internal/tensor"
)

func makeSamples(t *testing.T, w tensor.Workload, n int, seed int64) []active.Sample {
	t.Helper()
	sp, err := space.ForWorkload(w)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	out := make([]active.Sample, n)
	for i := range out {
		c := sp.Random(rng)
		out[i] = active.Sample{Config: c, GFLOPS: rng.Float64() * 1000, Valid: i%5 != 0}
	}
	return out
}

func TestHistoryWarmStart(t *testing.T) {
	h := NewHistory()
	w1 := tensor.Conv2D(1, 16, 28, 28, 32, 3, 1, 1)
	w2 := tensor.Conv2D(1, 32, 14, 14, 64, 3, 1, 1)
	h.Add("t1", tensor.OpConv2D, makeSamples(t, w1, 40, 1))
	h.Add("t2", tensor.OpConv2D, makeSamples(t, w2, 40, 2))
	if h.NumTasks() != 2 {
		t.Fatalf("NumTasks = %d", h.NumTasks())
	}
	X, y := h.WarmStart(tensor.OpConv2D, "", 50)
	if len(X) != 50 || len(y) != 50 {
		t.Fatalf("warm start returned %d/%d", len(X), len(y))
	}
	for _, v := range y {
		if v < 0 || v > 1 {
			t.Fatalf("rank-normalized target %v out of [0,1]", v)
		}
	}
	// Newest-first: the first rows must come from t2.
	X2, _ := h.WarmStart(tensor.OpConv2D, "", 40)
	if len(X2) != 40 {
		t.Fatalf("limit not honored: %d", len(X2))
	}
}

func TestWarmStartFiltersOpAndTask(t *testing.T) {
	h := NewHistory()
	conv := tensor.Conv2D(1, 16, 28, 28, 32, 3, 1, 1)
	dw := tensor.DepthwiseConv2D(1, 32, 28, 28, 3, 1, 1)
	h.Add("conv-task", tensor.OpConv2D, makeSamples(t, conv, 30, 3))
	h.Add("dw-task", tensor.OpDepthwiseConv2D, makeSamples(t, dw, 30, 4))
	X, _ := h.WarmStart(tensor.OpDepthwiseConv2D, "", 100)
	if len(X) != 30 {
		t.Fatalf("depthwise warm start = %d rows, want 30", len(X))
	}
	X, _ = h.WarmStart(tensor.OpConv2D, "conv-task", 100)
	if len(X) != 0 {
		t.Fatalf("excluded task leaked %d rows", len(X))
	}
	X, _ = h.WarmStart(tensor.OpDense, "", 100)
	if len(X) != 0 {
		t.Fatalf("dense history should be empty, got %d", len(X))
	}
}

func TestWarmStartEdgeCases(t *testing.T) {
	h := NewHistory()
	if x, y := h.WarmStart(tensor.OpConv2D, "", 10); x != nil || y != nil {
		t.Fatal("empty history should return nil")
	}
	if x, _ := h.WarmStart(tensor.OpConv2D, "", 0); x != nil {
		t.Fatal("zero limit should return nil")
	}
	h.Add("empty", tensor.OpConv2D, nil)
	if h.NumTasks() != 0 {
		t.Fatal("empty sample set should not be recorded")
	}
}

func TestWarmStartCopiesRows(t *testing.T) {
	h := NewHistory()
	w := tensor.Conv2D(1, 16, 28, 28, 32, 3, 1, 1)
	h.Add("t", tensor.OpConv2D, makeSamples(t, w, 5, 5))
	X1, _ := h.WarmStart(tensor.OpConv2D, "", 5)
	X1[0][0] = 12345
	X2, _ := h.WarmStart(tensor.OpConv2D, "", 5)
	if X2[0][0] == 12345 {
		t.Fatal("WarmStart must return copies")
	}
}

func TestRankNormalize(t *testing.T) {
	got := rankNormalize([]float64{30, 10, 20})
	want := []float64{1, 0, 0.5}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("rankNormalize = %v, want %v", got, want)
		}
	}
	// Ties get the average rank.
	got = rankNormalize([]float64{5, 5, 10})
	if got[0] != got[1] || got[0] != 0.25 || got[2] != 1 {
		t.Fatalf("tied ranks = %v", got)
	}
	if got := rankNormalize([]float64{7}); got[0] != 0.5 {
		t.Fatalf("singleton rank = %v", got)
	}
	// All equal: everything at the midpoint.
	got = rankNormalize([]float64{3, 3, 3, 3})
	for _, v := range got {
		if v != 0.5 {
			t.Fatalf("all-equal ranks = %v", got)
		}
	}
}
