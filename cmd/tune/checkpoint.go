package main

import (
	"fmt"
	"io"
	"os"

	"repro/internal/sched"
	"repro/internal/snap"
)

// tuneCheckpointKind tags cmd/tune's checkpoint frames. The checkpoint file
// is a snap stream: one self-contained frame per scheduler boundary,
// appended with a single write so an interrupt at any instant leaves a
// valid file (at worst a torn final frame, which the tolerant reader
// drops). Resume loads the last complete frame.
const tuneCheckpointKind = "tune-checkpoint/v1"

// tuneCheckpoint is one checkpoint frame: the run inputs that must match on
// resume (the scheduler state is only meaningful against the exact model,
// tuner, seeds, and budget shape that produced it), the record-log position
// the frame is aligned with, and the scheduler's serialized state.
//
// -workers and -task-timeout are deliberately absent: measurement results
// are worker-count invariant, and per-task deadline clocks restart on
// resume by design.
type tuneCheckpoint struct {
	Model     string `json:"model"`
	Tuner     string `json:"tuner"`
	Device    string `json:"device"`
	Ops       string `json:"ops"`
	Seed      int64  `json:"seed"`
	Budget    int    `json:"budget"`
	EarlyStop int    `json:"early_stop"`
	PlanSize  int    `json:"plan_size"`
	Runs      int    `json:"runs"`
	TaskConc  int    `json:"task_concurrency"`
	Policy    string `json:"budget_policy"`
	// Records counts the record-log entries flushed before this frame was
	// written. Resume truncates the log back to exactly this many records,
	// discarding measurements from the interrupted tail, and continues
	// appending from there.
	Records int               `json:"records"`
	Sched   *sched.Checkpoint `json:"sched"`

	// path is the file this checkpoint was loaded from, so a resumed run
	// that checkpoints to the same file appends instead of truncating.
	path string
}

// validate rejects a resume whose flags differ from the checkpointed run's.
func (tc *tuneCheckpoint) validate(model string, cfg runConfig, seed int64) error {
	checks := []struct {
		flag      string
		got, want any
	}{
		{"model", tc.Model, model},
		{"tuner", tc.Tuner, cfg.tuner},
		{"device", tc.Device, cfg.device},
		{"ops", tc.Ops, cfg.ops},
		{"seed", tc.Seed, seed},
		{"budget", tc.Budget, cfg.budget},
		{"earlystop", tc.EarlyStop, cfg.earlyStop},
		{"plan", tc.PlanSize, cfg.planSize},
		{"runs", tc.Runs, cfg.runs},
		{"task-concurrency", tc.TaskConc, cfg.taskConc},
		{"budget-policy", tc.Policy, cfg.budgetPolicy},
	}
	for _, c := range checks {
		if c.got != c.want {
			return fmt.Errorf("checkpoint was written with -%s %v, this run has %v (resume with the original flags)", c.flag, c.got, c.want)
		}
	}
	if tc.Sched == nil {
		return fmt.Errorf("checkpoint frame carries no scheduler state")
	}
	return nil
}

// sniffCheckpoint reports whether path starts with the snap magic, which
// distinguishes a checkpoint file from a record log (JSON lines) so -resume
// can accept either.
func sniffCheckpoint(path string) (bool, error) {
	f, err := os.Open(path)
	if err != nil {
		return false, err
	}
	defer f.Close()
	buf := make([]byte, len(snap.Magic)+1)
	if _, err := io.ReadFull(f, buf); err != nil {
		// Too short to hold a frame header; treat as a (possibly empty)
		// record log and let the record reader complain if it is neither.
		return false, nil
	}
	return string(buf[:len(snap.Magic)]) == snap.Magic && buf[len(snap.Magic)] == ' ', nil
}

// loadTuneCheckpoint returns the last complete checkpoint frame in path.
func loadTuneCheckpoint(path string) (*tuneCheckpoint, error) {
	frames, err := snap.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("reading checkpoint %s: %w", path, err)
	}
	fr, ok := snap.Last(frames, tuneCheckpointKind)
	if !ok {
		return nil, fmt.Errorf("checkpoint %s holds no complete %q frame", path, tuneCheckpointKind)
	}
	tc := &tuneCheckpoint{}
	if err := fr.Unmarshal(tc); err != nil {
		return nil, fmt.Errorf("decoding checkpoint %s: %w", path, err)
	}
	tc.path = path
	return tc, nil
}
