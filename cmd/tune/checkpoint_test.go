package main

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/job"
	"repro/internal/record"
	"repro/internal/snap"
)

func testCfg(conc int, policy string) runConfig {
	return runConfig{
		tuner:        "autotvm",
		ops:          "conv",
		device:       "gtx1080ti",
		budget:       24,
		earlyStop:    -1,
		planSize:     8,
		runs:         50,
		workers:      2,
		taskConc:     conc,
		budgetPolicy: policy,
	}
}

// reportLines extracts the deterministic parts of a run's report: the final
// summary line and the per-task best lines with their wall-clock suffix
// stripped (elapsed times are the one part of the output that legitimately
// differs between an uninterrupted and a resumed run).
func reportLines(out string) []string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		switch {
		case strings.Contains(line, " GFLOPS after "):
			if i := strings.LastIndex(line, " in "); i >= 0 {
				line = line[:i]
			}
			keep = append(keep, line)
		case strings.Contains(line, " ms (var "):
			keep = append(keep, line)
		}
	}
	return keep
}

func readLog(t *testing.T, path string) []record.Record {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	recs, err := record.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	return recs
}

// sameRecordStream asserts the two logs carry the same measurements. With
// task concurrency 1 the whole stream is byte-identical; with concurrent
// tasks the cross-task interleaving of OnRecord is unspecified, so the
// comparison drops to per-task subsequences (which are fully ordered).
func sameRecordStream(t *testing.T, wantPath, gotPath string, conc int) {
	t.Helper()
	if conc == 1 {
		want, err := os.ReadFile(wantPath)
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(gotPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want, got) {
			t.Fatalf("record logs differ byte-wise: %d vs %d bytes", len(want), len(got))
		}
		return
	}
	byTask := func(recs []record.Record) map[string][]record.Record {
		m := make(map[string][]record.Record)
		for _, r := range recs {
			m[r.Task] = append(m[r.Task], r)
		}
		return m
	}
	want, got := byTask(readLog(t, wantPath)), byTask(readLog(t, gotPath))
	if len(want) != len(got) {
		t.Fatalf("task sets differ: %d vs %d", len(want), len(got))
	}
	for task, wr := range want {
		gr, ok := got[task]
		if !ok || len(wr) != len(gr) {
			t.Fatalf("task %s: %d records vs %d", task, len(wr), len(gr))
		}
		for i := range wr {
			// Record holds a slice field, so compare formatted values.
			if fmt.Sprintf("%+v", wr[i]) != fmt.Sprintf("%+v", gr[i]) {
				t.Fatalf("task %s record %d differs:\n%+v\n%+v", task, i, wr[i], gr[i])
			}
		}
	}
}

// TestCrashResumeCheckpoint is the end-to-end rehearsal of an interrupted
// tune run: the run is killed at a checkpoint boundary (through the same
// context-cancellation path Ctrl-C uses), resumed from the checkpoint file,
// and must finish with a record log and summary identical to a run that was
// never interrupted.
func TestCrashResumeCheckpoint(t *testing.T) {
	const model = "mobilenet-v1"
	cases := []struct {
		name      string
		conc      int
		policy    string
		seed      int64
		stopAfter int
	}{
		{"sequential", 1, "uniform", 2021, 2},
		{"rounds", 2, "uniform", 2022, 3},
		{"adaptive", 2, "adaptive", 2023, 1},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			cfg := testCfg(tc.conc, tc.policy)

			refLog := filepath.Join(dir, "ref.jsonl")
			var refOut bytes.Buffer
			if err := runModel(context.Background(), &refOut, model, cfg, tc.seed, refLog, nil, "", nil); err != nil {
				t.Fatalf("reference run: %v", err)
			}

			// Interrupted leg: cancel after the Nth checkpoint. The run must
			// die with the cancellation error while leaving a loadable
			// checkpoint file behind.
			cpPath := filepath.Join(dir, "run.ckpt")
			log := filepath.Join(dir, "run.jsonl")
			killed := cfg
			killed.stopAfter = tc.stopAfter
			var killedOut bytes.Buffer
			err := runModel(context.Background(), &killedOut, model, killed, tc.seed, log, nil, cpPath, nil)
			if !errors.Is(err, context.Canceled) {
				t.Fatalf("interrupted run returned %v, want context.Canceled", err)
			}

			cp, err := job.LoadCheckpoint(cpPath)
			if err != nil {
				t.Fatal(err)
			}
			// The round driver's first boundary precedes any measurement, so a
			// very early kill can leave a valid zero-record checkpoint; the
			// frame itself must always carry scheduler state.
			if cp.Sched == nil {
				t.Fatalf("checkpoint has no scheduler state: %+v", cp)
			}
			if got := len(readLog(t, log)); got < cp.Records {
				t.Fatalf("log holds %d records, checkpoint counts %d", got, cp.Records)
			}

			var resumedOut bytes.Buffer
			if err := runModel(context.Background(), &resumedOut, model, cfg, tc.seed, log, nil, cpPath, cp); err != nil {
				t.Fatalf("resumed run: %v", err)
			}

			sameRecordStream(t, refLog, log, tc.conc)
			ref, resumed := reportLines(refOut.String()), reportLines(resumedOut.String())
			if len(ref) == 0 {
				t.Fatal("reference report has no comparable lines")
			}
			if fmt.Sprint(ref) != fmt.Sprint(resumed) {
				t.Fatalf("reports differ:\nref:     %q\nresumed: %q", ref, resumed)
			}

			// The resumed run appended to the same checkpoint file; its final
			// frame must be the run-completing one with every task finalized.
			final, err := job.LoadCheckpoint(cpPath)
			if err != nil {
				t.Fatal(err)
			}
			for _, task := range final.Sched.Tasks {
				if task.Outcome == nil {
					t.Fatalf("final checkpoint leaves task %s unfinalized", task.Name)
				}
			}
		})
	}
}

// TestCheckpointResumeFlagValidation exercises the loud-failure paths: a
// resume must present the original flags, and a checkpoint file is
// distinguishable from a record log.
func TestCheckpointResumeFlagValidation(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg(1, "uniform")
	cfg.stopAfter = 1
	cpPath := filepath.Join(dir, "run.ckpt")
	err := runModel(context.Background(), io.Discard, "mobilenet-v1", cfg, 7, "", nil, cpPath, nil)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("interrupted run returned %v", err)
	}

	if kind, err := snap.Detect(cpPath); err != nil || kind != snap.KindSnap {
		t.Fatalf("snap.Detect(%s) = %v, %v; want KindSnap", cpPath, kind, err)
	}
	logPath := filepath.Join(dir, "plain.jsonl")
	if err := record.Write(mustCreate(t, logPath), []record.Record{{Task: "t", Workload: "w", Step: 1, Config: []int{0}}}); err != nil {
		t.Fatal(err)
	}
	if kind, err := snap.Detect(logPath); err != nil || kind != snap.KindRecords {
		t.Fatalf("snap.Detect on a record log = %v, %v; want KindRecords", kind, err)
	}

	cp, err := job.LoadCheckpoint(cpPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := cp.Validate(cfg.spec("mobilenet-v1", 8)); err == nil || !strings.Contains(err.Error(), "original flags") {
		t.Fatalf("seed mismatch not rejected: %v", err)
	}
	other := cfg
	other.budget = 99
	if err := cp.Validate(other.spec("mobilenet-v1", 7)); err == nil || !strings.Contains(err.Error(), "-budget") {
		t.Fatalf("budget mismatch not rejected: %v", err)
	}
	if err := cp.Validate(cfg.spec("resnet-18", 7)); err == nil {
		t.Fatal("model mismatch not rejected")
	}
	if err := cp.Validate(cfg.spec("mobilenet-v1", 7)); err != nil {
		t.Fatalf("matching flags rejected: %v", err)
	}
}

func mustCreate(t *testing.T, path string) *os.File {
	t.Helper()
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { f.Close() })
	return f
}
