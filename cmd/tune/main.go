// Command tune optimizes model deployments end to end with a chosen search
// strategy on a simulated device, reporting per-task results and the final
// latency statistics, and optionally writing the tuning log.
//
// Usage:
//
//	tune -model mobilenet-v1 -tuner bted+bao -budget 512 -log out.jsonl
//	tune -model all -parallel 5 -workers 8
//
// -model accepts one name, a comma-separated list, or "all" (the five paper
// models). Multiple models tune concurrently on -parallel goroutines, each
// with its own simulator and transfer history (history updates stay ordered
// within a model because its tasks tune sequentially); per-model reports are
// printed in list order when everything finishes. Model i derives its run
// seed as seed+i*104729, so a multi-model run is reproducible and model
// results do not depend on -parallel. With -log and several models, each
// model writes <log>.<model>.
//
// The record log streams: every measurement is appended as one JSON line
// and flushed at batch boundaries, so an interrupt (Ctrl-C) leaves a clean
// checkpoint that -resume can pick up. Interrupted runs exit nonzero.
//
// -checkpoint goes further than the record log: every scheduler boundary
// appends a self-contained snapshot frame (run flags, record-log position,
// full tuner/scheduler state), each written atomically enough that Ctrl-C
// at any instant leaves a resumable file. -resume detects a checkpoint file
// by its magic and continues the run bit-identically — the remaining
// measurements, the record log, and the final summary come out exactly as
// an uninterrupted run's. Resume requires the original flags (model, tuner,
// seed, budget shape); mismatches fail loudly. The record log, when also
// given, is rewound to the checkpoint's position and extended in place.
//
// Within a model, -task-concurrency hands the task list to the graph
// scheduler: 1 (the default) is the classic sequential pipeline, higher
// values tune tasks concurrently in deterministic rounds with identical
// results for every concurrency value. -budget-policy picks how the
// scheduler spends the measurement budget (uniform per task, or adaptive
// reallocation toward the tasks still improving), and -dry-run prints the
// planned round/budget schedule without measuring anything.
//
// Tuners: autotvm | bted | bted+bao | random | grid | ga | chameleon.
package main

import (
	"bytes"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/job"
	"repro/internal/par"
	"repro/internal/record"
	"repro/internal/sched"
	"repro/internal/snap"
	"repro/internal/tuner"
)

func main() {
	model := flag.String("model", "mobilenet-v1", "model name, comma-separated list, or \"all\" (see cmd/space -list)")
	tunerName := flag.String("tuner", "bted+bao", "autotvm | bted | bted+bao | random | grid | ga | chameleon")
	ops := flag.String("ops", "all", "task extraction: conv or all")
	budget := flag.Int("budget", 512, "measurement budget per task")
	earlyStop := flag.Int("earlystop", 400, "early stopping threshold (<0 disables)")
	planSize := flag.Int("plan", 64, "batch/initialization size")
	runs := flag.Int("runs", 600, "end-to-end latency runs")
	seed := flag.Int64("seed", 2021, "random seed")
	logPath := flag.String("log", "", "stream tuning records (JSON lines) to this file")
	resumePath := flag.String("resume", "", "resume from a previous record log (JSON lines) or a -checkpoint file")
	checkpointPath := flag.String("checkpoint", "", "stream run checkpoints to this file; -resume from it continues the run bit-identically")
	checkpointEvery := flag.Int("checkpoint-every", 0, "minimum new measurements between checkpoints (0: every scheduler boundary)")
	stopAfter := flag.Int("stop-after-checkpoints", 0, "testing hook: interrupt the run after N checkpoints (0 disables)")
	device := flag.String("device", "gtx1080ti", "simulated device: "+strings.Join(backend.Devices(), " | "))
	workers := flag.Int("workers", 0, "measurement worker pool per task (<=0: GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "models tuned concurrently (<=0: GOMAXPROCS, capped at model count)")
	timeout := flag.Duration("task-timeout", 0, "per-task wall-clock deadline (0 disables); expiry deploys the best found so far")
	taskConc := flag.Int("task-concurrency", 1, "tasks tuned concurrently by the graph scheduler (1: classic sequential pipeline)")
	budgetPolicy := flag.String("budget-policy", "uniform", "scheduler budget policy: uniform | adaptive")
	dryRun := flag.Bool("dry-run", false, "print the planned round/budget schedule per task and exit without measuring")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	flag.Parse()

	// Ctrl-C (or SIGTERM) cancels the run context: in-flight measurements
	// finish, the record log flushes its checkpoint, and the command exits
	// nonzero.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	cfg := runConfig{
		tuner:           *tunerName,
		ops:             *ops,
		device:          *device,
		budget:          *budget,
		earlyStop:       *earlyStop,
		planSize:        *planSize,
		runs:            *runs,
		workers:         *workers,
		timeout:         *timeout,
		taskConc:        *taskConc,
		budgetPolicy:    *budgetPolicy,
		checkpointEvery: *checkpointEvery,
		stopAfter:       *stopAfter,
	}
	if *dryRun {
		if err := printDryRun(os.Stdout, resolveModels(*model), cfg); err != nil {
			fmt.Fprintln(os.Stderr, "tune:", err)
			os.Exit(1)
		}
		return
	}
	// Profiled body in its own function so deferred profile teardown runs
	// before os.Exit.
	if err := profiledRun(ctx, *cpuProfile, *memProfile, func(ctx context.Context) error {
		return run(ctx, resolveModels(*model), cfg, *seed, *logPath, *resumePath, *checkpointPath, *parallel)
	}); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "tune: interrupted; record log and checkpoint flushed:", err)
		} else {
			fmt.Fprintln(os.Stderr, "tune:", err)
		}
		os.Exit(1)
	}
}

// profiledRun wraps body with optional CPU and heap profiling: the CPU
// profile covers the whole body, the heap profile is snapshotted after a GC
// once the body returns.
func profiledRun(ctx context.Context, cpuProfile, memProfile string, body func(context.Context) error) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "tune: close cpu profile:", cerr)
			}
		}()
	}
	err := body(ctx)
	if memProfile != "" {
		f, werr := os.Create(memProfile)
		if werr == nil {
			runtime.GC()
			werr = pprof.WriteHeapProfile(f)
			if cerr := f.Close(); werr == nil {
				werr = cerr
			}
		}
		if werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// runConfig carries the per-model tuning settings shared by every model of
// a multi-model run.
type runConfig struct {
	tuner           string
	ops             string
	device          string
	budget          int
	earlyStop       int
	planSize        int
	runs            int
	workers         int
	timeout         time.Duration
	taskConc        int
	budgetPolicy    string
	checkpointEvery int
	stopAfter       int // testing hook: cancel the run after N checkpoints
}

func (c runConfig) extract() graph.ExtractOpts {
	if c.ops == "conv" {
		return graph.ConvOnly
	}
	return graph.AllOps
}

// spec assembles the job description the flags denote. cmd/tune passes
// every field explicitly (no Normalized defaults), so the stream is exactly
// what the flags say.
func (c runConfig) spec(model string, seed int64) job.Spec {
	return job.Spec{
		Model: model, Tuner: c.tuner, Device: c.device, Ops: c.ops,
		Seed: seed, Budget: c.budget, EarlyStop: c.earlyStop,
		PlanSize: c.planSize, Runs: c.runs, Workers: c.workers,
		TaskConcurrency: c.taskConc, BudgetPolicy: c.budgetPolicy,
		CheckpointEvery: c.checkpointEvery,
	}
}

// printDryRun prints the scheduler's planned round/budget schedule for each
// model without running a single measurement: task list, policy, and the
// per-round grants with cumulative budgets (idealized — early stopping and
// measured gains will bend the real run).
func printDryRun(w io.Writer, models []string, cfg runConfig) error {
	policy, err := sched.PolicyByName(cfg.budgetPolicy)
	if err != nil {
		return err
	}
	for _, model := range models {
		g, err := graph.Model(model)
		if err != nil {
			return err
		}
		gtasks := graph.ExtractTasks(g, cfg.extract())
		specs := make([]sched.Spec, 0, len(gtasks))
		for _, gt := range gtasks {
			task, err := tuner.FromGraphTask(gt)
			if err != nil {
				return err
			}
			specs = append(specs, sched.Spec{Task: task, Opts: tuner.Options{
				Budget: cfg.budget, EarlyStop: cfg.earlyStop, PlanSize: cfg.planSize,
			}})
		}
		plans := sched.PlanPreview(specs, sched.Options{TaskConcurrency: cfg.taskConc, Policy: policy})
		fmt.Fprintf(w, "%s: %d tasks, policy %s, task-concurrency %d, %d planned rounds\n",
			model, len(specs), policy.Name(), cfg.taskConc, len(plans))
		for _, plan := range plans {
			fmt.Fprintf(w, "  round %2d:", plan.Round+1)
			for _, gr := range plan.Grants {
				fmt.Fprintf(w, "  %s +%d (=%d)", specs[gr.Index].Task.Name, gr.Grant, gr.Cumulative)
			}
			fmt.Fprintln(w)
		}
	}
	return nil
}

func resolveModels(spec string) []string {
	if spec == "all" {
		return append([]string(nil), graph.ModelNames...)
	}
	var out []string
	for _, m := range strings.Split(spec, ",") {
		if m = strings.TrimSpace(m); m != "" {
			out = append(out, m)
		}
	}
	return out
}

func run(ctx context.Context, models []string, cfg runConfig, seed int64, logPath, resumePath, cpPath string, parallel int) error {
	if len(models) == 0 {
		return fmt.Errorf("no models given")
	}
	var resume []record.Record
	var resumeCp *job.Checkpoint
	if resumePath != "" {
		kind, err := snap.Detect(resumePath)
		if err != nil {
			return err
		}
		if kind == snap.KindSnap {
			if len(models) != 1 {
				return fmt.Errorf("-resume with a checkpoint file drives a single model (a multi-model run writes one checkpoint per model)")
			}
			if resumeCp, err = job.LoadCheckpoint(resumePath); err != nil {
				return err
			}
			fmt.Printf("resuming %s from checkpoint %s (round %d, %d records)\n",
				resumeCp.Model, resumePath, resumeCp.Sched.Round, resumeCp.Records)
		} else {
			if cpPath != "" {
				// A checkpoint only continues bit-identically when the resumed
				// run rebuilds the exact inputs, and the warm-start records
				// behind a record-log -resume are not part of the frame.
				return fmt.Errorf("-checkpoint cannot be combined with a record-log -resume; resume from the checkpoint file instead")
			}
			f, err := os.Open(resumePath)
			if err != nil {
				return err
			}
			resume, err = record.Read(f)
			f.Close()
			if err != nil {
				return err
			}
			fmt.Printf("resuming from %d records in %s\n", len(resume), resumePath)
		}
	}

	if len(models) == 1 {
		return runModel(ctx, os.Stdout, models[0], cfg, seed, logPath, resume, cpPath, resumeCp)
	}

	if parallel <= 0 {
		parallel = par.Workers()
	}
	if parallel > len(models) {
		parallel = len(models)
	}
	fmt.Printf("tuning %d models, %d concurrently\n", len(models), parallel)
	// Each model gets a decorrelated seed and buffers its report so the
	// concurrent runs print cleanly in list order at the end. The ctx-aware
	// pool stops dispatching new models once the run is cancelled; models
	// already running checkpoint themselves.
	outs := make([]bytes.Buffer, len(models))
	errs := make([]error, len(models))
	started := par.ForContext(ctx, len(models), parallel, func(i int) {
		lp := logPath
		if lp != "" {
			lp = fmt.Sprintf("%s.%s", logPath, models[i])
		}
		cp := cpPath
		if cp != "" {
			cp = fmt.Sprintf("%s.%s", cpPath, models[i])
		}
		errs[i] = runModel(ctx, &outs[i], models[i], cfg, seed+int64(i)*104729, lp, resume, cp, nil)
	})
	var firstErr error
	for i, m := range models {
		fmt.Printf("\n===== %s =====\n", m)
		if _, err := io.Copy(os.Stdout, &outs[i]); err != nil {
			return err
		}
		if i >= started && errs[i] == nil {
			errs[i] = ctx.Err()
		}
		if errs[i] != nil {
			fmt.Printf("error: %v\n", errs[i])
			if firstErr == nil {
				firstErr = fmt.Errorf("%s: %w", m, errs[i])
			}
		}
	}
	return firstErr
}

func runModel(ctx context.Context, w io.Writer, model string, cfg runConfig, seed int64, logPath string, resume []record.Record, cpPath string, resumeCp *job.Checkpoint) error {
	// -stop-after-checkpoints interrupts through the same path Ctrl-C does:
	// cancelling the run context after the Nth checkpoint lands.
	ctx, cancelRun := context.WithCancel(ctx)
	defer cancelRun()
	// Per-task wall-clock report, collected from completion events (which the
	// pipeline serializes, so plain map writes are safe).
	elapsed := make(map[string]time.Duration)
	opts := job.RunOptions{
		LogPath:          logPath,
		CheckpointPath:   cpPath,
		ResumeRecords:    resume,
		ResumeCheckpoint: resumeCp,
		TaskDeadline:     cfg.timeout,
		Progress: func(i, n int, name string) {
			fmt.Fprintf(w, "[%2d/%2d] tuning %s\n", i, n, name)
		},
		OnTaskDone: func(e core.TaskEvent) {
			elapsed[e.Name] = e.Elapsed
			fmt.Fprintf(w, "[%2d/%2d] done   %s: %d measurements in %v\n",
				e.Index, e.Total, e.Name, e.Measurements, e.Elapsed.Round(time.Millisecond))
		},
	}
	if cfg.stopAfter > 0 {
		stopAfter := cfg.stopAfter
		opts.AfterCheckpoint = func(n int) {
			if n >= stopAfter {
				cancelRun()
			}
		}
	}

	res, err := job.Run(ctx, cfg.spec(model, seed), opts)
	if res.Streamed {
		fmt.Fprintf(w, "streamed %d records to %s\n", res.Records, logPath)
	}
	if err != nil {
		return err
	}
	dep := res.Deployment

	fmt.Fprintln(w)
	for _, t := range dep.Tasks {
		fmt.Fprintf(w, "%-24s best %9.1f GFLOPS after %4d measurements in %v\n",
			t.Task.Name, t.Result.Best.GFLOPS, t.Result.Measurements,
			elapsed[t.Task.Name].Round(time.Millisecond))
	}
	fmt.Fprintln(w)
	fmt.Fprintln(w, dep.Summary())

	if shares, berr := dep.Breakdown(res.Backend.Simulator().Estimator()); berr == nil {
		fmt.Fprintln(w, "\nlatency breakdown (top tasks):")
		if len(shares) > 8 {
			shares = shares[:8]
		}
		if perr := core.PrintBreakdown(w, shares); perr != nil {
			return perr
		}
	}
	return nil
}
