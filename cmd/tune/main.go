// Command tune optimizes one model's deployment end to end with a chosen
// search strategy on the simulated GTX 1080 Ti, reporting per-task results
// and the final latency statistics, and optionally writing the tuning log.
//
// Usage:
//
//	tune -model mobilenet-v1 -tuner bted+bao -budget 512 -log out.jsonl
//
// Tuners: autotvm | bted | bted+bao | random | grid | ga.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/hwsim"
	"repro/internal/record"
	"repro/internal/tuner"
)

func main() {
	model := flag.String("model", "mobilenet-v1", "model name (see cmd/space -list)")
	tunerName := flag.String("tuner", "bted+bao", "autotvm | bted | bted+bao | random | grid | ga | chameleon")
	ops := flag.String("ops", "all", "task extraction: conv or all")
	budget := flag.Int("budget", 512, "measurement budget per task")
	earlyStop := flag.Int("earlystop", 400, "early stopping threshold (<0 disables)")
	planSize := flag.Int("plan", 64, "batch/initialization size")
	runs := flag.Int("runs", 600, "end-to-end latency runs")
	seed := flag.Int64("seed", 2021, "random seed")
	logPath := flag.String("log", "", "write tuning records (JSON lines) to this file")
	resumePath := flag.String("resume", "", "resume from a previous record log (JSON lines)")
	device := flag.String("device", "gtx1080ti", "simulated device: gtx1080ti | v100 | gtx1060 | jetsontx2")
	flag.Parse()

	if err := run(*model, *tunerName, *ops, *device, *budget, *earlyStop, *planSize, *runs, *seed, *logPath, *resumePath); err != nil {
		fmt.Fprintln(os.Stderr, "tune:", err)
		os.Exit(1)
	}
}

func newTuner(name string) (tuner.Tuner, error) {
	switch name {
	case "autotvm":
		return tuner.NewAutoTVM(), nil
	case "bted":
		return tuner.NewBTED(), nil
	case "bted+bao":
		return tuner.NewBTEDBAO(), nil
	case "random":
		return tuner.RandomTuner{}, nil
	case "grid":
		return tuner.GridTuner{}, nil
	case "ga":
		return tuner.GATuner{}, nil
	case "chameleon":
		return tuner.NewChameleon(), nil
	default:
		return nil, fmt.Errorf("unknown tuner %q", name)
	}
}

func run(model, tunerName, ops, deviceName string, budget, earlyStop, planSize, runs int, seed int64, logPath, resumePath string) error {
	tn, err := newTuner(tunerName)
	if err != nil {
		return err
	}
	extract := graph.AllOps
	if ops == "conv" {
		extract = graph.ConvOnly
	}
	dev, ok := hwsim.DeviceByName(deviceName)
	if !ok {
		return fmt.Errorf("unknown device %q", deviceName)
	}
	var resume []record.Record
	if resumePath != "" {
		f, err := os.Open(resumePath)
		if err != nil {
			return err
		}
		resume, err = record.Read(f)
		f.Close()
		if err != nil {
			return err
		}
		fmt.Printf("resuming from %d records in %s\n", len(resume), resumePath)
	}
	sim := hwsim.NewSimulator(dev, seed)
	opts := core.PipelineOptions{
		Tuning: tuner.Options{
			Budget:    budget,
			EarlyStop: earlyStop,
			PlanSize:  planSize,
			Seed:      seed,
		},
		Extract:     extract,
		UseTransfer: true,
		Resume:      resume,
		Runs:        runs,
		Progress: func(i, n int, name string) {
			fmt.Printf("[%2d/%2d] tuning %s\n", i, n, name)
		},
	}
	dep, err := core.OptimizeModel(model, tn, sim, opts)
	if err != nil {
		return err
	}

	fmt.Println()
	for _, t := range dep.Tasks {
		fmt.Printf("%-24s best %9.1f GFLOPS after %4d measurements\n",
			t.Task.Name, t.Result.Best.GFLOPS, t.Result.Measurements)
	}
	fmt.Println()
	fmt.Println(dep.Summary())

	if shares, err := dep.Breakdown(sim.Estimator()); err == nil {
		fmt.Println("\nlatency breakdown (top tasks):")
		if len(shares) > 8 {
			shares = shares[:8]
		}
		if err := core.PrintBreakdown(os.Stdout, shares); err != nil {
			return err
		}
	}

	if logPath != "" {
		f, err := os.Create(logPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := record.Write(f, dep.Records()); err != nil {
			return err
		}
		fmt.Printf("wrote %d records to %s\n", dep.TotalMeasurements, logPath)
	}
	return nil
}
