// Command served runs the tuning service: an HTTP/JSON daemon that accepts
// job specs, queues them FIFO through internal/job's Manager, streams live
// measurement records to subscribers, and survives being killed at any
// instant — on restart it re-admits unfinished jobs and resumes them from
// their last checkpoint, continuing the exact record stream a single
// uninterrupted run would have produced.
//
// Usage:
//
//	served -addr :8080 -store jobs -concurrency 2 -max-queue 256
//
// API (JSON unless noted):
//
//	POST   /v1/jobs              submit {"id": ..., "spec": {...}} → 201 status
//	                             (429 + Retry-After when the queue is full)
//	GET    /v1/jobs              list all job statuses
//	GET    /v1/jobs/{id}         one job's status
//	GET    /v1/jobs/{id}/result  terminal result frame (409 while running)
//	GET    /v1/jobs/{id}/records snapshot of the record log (JSON lines)
//	GET    /v1/jobs/{id}/stream  live SSE record stream; ?from=N skips a prefix
//	DELETE /v1/jobs/{id}         cancel (queued: immediate; running: next batch)
//	GET    /v1/stats             fleet stats (shared measurement cache accounting)
//	GET    /healthz              liveness probe
//
// Every job's record stream is a pure function of its spec and seed: an
// omitted ID is derived from the spec, an omitted seed is derived from the
// ID, and the SSE stream replays from the start for every subscriber, so a
// late subscriber sees byte-for-byte what an early one did. The fleet-wide
// measurement cache (disable with -cache-capacity -1) shares simulator
// work between jobs on the same device without changing any stream: cache
// hits are bit-identical to re-measuring.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/job"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	storeDir := flag.String("store", "jobs", "job store directory (crash-safe; survives restarts)")
	concurrency := flag.Int("concurrency", 1, "jobs tuned concurrently")
	maxQueue := flag.Int("max-queue", 0, "pending-queue cap; submits past it get 429 (0: unbounded)")
	cacheCap := flag.Int("cache-capacity", 0, "shared measurement cache entries (0: default, negative: disabled)")
	flag.Parse()

	if err := run(*addr, *storeDir, *concurrency, *maxQueue, *cacheCap); err != nil {
		fmt.Fprintln(os.Stderr, "served:", err)
		os.Exit(1)
	}
}

func run(addr, storeDir string, concurrency, maxQueue, cacheCap int) error {
	store, err := job.OpenStore(storeDir)
	if err != nil {
		return err
	}
	var shared *backend.SharedCache
	if cacheCap >= 0 {
		shared = backend.NewSharedCache(cacheCap)
	}
	mgr := job.NewManagerWith(store, job.ManagerOptions{
		Concurrency: concurrency,
		MaxQueue:    maxQueue,
		Shared:      shared,
	})
	// Recovery before serving: jobs a previous daemon life left queued or
	// mid-run re-enter the queue (ahead of new arrivals) and resume from
	// their last checkpoint.
	if err := mgr.Recover(); err != nil {
		return err
	}
	for _, st := range mgr.List() {
		if st.Resumed {
			log.Printf("recovered %s: resuming from checkpoint (%d records)", st.ID, st.Records)
		}
	}

	srv := &http.Server{Addr: addr, Handler: serve.New(mgr)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("serving on %s (store %s, concurrency %d, max-queue %d)", addr, storeDir, concurrency, maxQueue)

	select {
	case err := <-errc:
		mgr.Close()
		return err
	case <-ctx.Done():
	}
	// Graceful shutdown: stop accepting connections, then interrupt running
	// jobs so they flush their logs and checkpoints. No terminal frame is
	// written for interrupted jobs — that is what makes the next start
	// resume them.
	log.Printf("shutting down: interrupting running jobs at their next batch boundary")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	serr := srv.Shutdown(sctx)
	mgr.Close()
	if serr != nil && !errors.Is(serr, context.DeadlineExceeded) {
		return serr
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
