package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/job"
	"repro/internal/serve"
)

func tinySpec(seed int64) job.Spec {
	return job.Spec{
		Model: "mobilenet-v1", Tuner: "autotvm", Device: "gtx1080ti", Ops: "conv",
		Seed: seed, Budget: 16, EarlyStop: -1, PlanSize: 8, Runs: 20, Workers: 2,
		TaskConcurrency: 1, BudgetPolicy: "uniform",
	}
}

// sseEvent is one parsed Server-Sent Event.
type sseEvent struct {
	id    string
	event string
	data  string
}

// readSSE parses events off an SSE stream until stop returns true or the
// stream ends.
func readSSE(t *testing.T, r io.Reader, stop func(ev sseEvent) bool) []sseEvent {
	t.Helper()
	var evs []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if cur.event != "" || cur.data != "" {
				evs = append(evs, cur)
				if stop(cur) {
					return evs
				}
				cur = sseEvent{}
			}
		case strings.HasPrefix(line, "id: "):
			cur.id = strings.TrimPrefix(line, "id: ")
		case strings.HasPrefix(line, "event: "):
			cur.event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.data = strings.TrimPrefix(line, "data: ")
		default:
			t.Fatalf("unexpected SSE line %q", line)
		}
	}
	return evs
}

// recordData joins the record events back into JSON-lines form — the exact
// byte layout of a records.jsonl file.
func recordData(evs []sseEvent) []byte {
	var buf bytes.Buffer
	for _, ev := range evs {
		if ev.event == "record" {
			buf.WriteString(ev.data)
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

func submitBody(t *testing.T, id string, spec job.Spec) io.Reader {
	t.Helper()
	data, err := json.Marshal(job.Submit{ID: id, Spec: spec})
	if err != nil {
		t.Fatal(err)
	}
	return bytes.NewReader(data)
}

// TestServedCrashResumeCheckpoint is the end-to-end daemon rehearsal: a job
// submitted over HTTP is killed mid-round by daemon shutdown, a second
// daemon over the same store recovers and finishes it, and a late SSE
// subscriber's replayed stream must be byte-identical to the record log an
// uninterrupted direct run of the same Spec and seed produces.
func TestServedCrashResumeCheckpoint(t *testing.T) {
	dir := t.TempDir()
	spec := tinySpec(2041)
	spec.Budget = 48

	refLog := filepath.Join(dir, "ref.jsonl")
	if _, err := job.Run(context.Background(), spec, job.RunOptions{LogPath: refLog}); err != nil {
		t.Fatalf("reference run: %v", err)
	}
	refBytes, err := os.ReadFile(refLog)
	if err != nil {
		t.Fatal(err)
	}

	storeDir := filepath.Join(dir, "jobs")
	store1, err := job.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	mgr1 := job.NewManager(store1, 1)
	ts1 := httptest.NewServer(serve.New(mgr1))

	const id = "crash-1"
	resp, err := http.Post(ts1.URL+"/v1/jobs", "application/json", submitBody(t, id, spec))
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusCreated {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit = %d: %s", resp.StatusCode, body)
	}
	resp.Body.Close()

	// Wait until the job is resumable (a checkpoint frame on disk, a batch
	// of records out), then kill the daemon. The resumability probe goes
	// straight to the store and manager: on a small machine the CPU-bound
	// run starves the HTTP goroutines, and a probe routed through the
	// server would often not land until the job had already finished.
	for {
		st, err := mgr1.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.State.Terminal() || st.State == job.StateQueued && st.Records > 0 {
			t.Fatalf("job reached %s before the shutdown fired; raise the spec budget", st.State)
		}
		cp, cerr := store1.LoadCheckpoint(id)
		if cerr == nil && cp != nil && st.Records >= spec.PlanSize {
			break
		}
		time.Sleep(time.Millisecond)
	}
	mgr1.Close() // daemon shutdown: interrupt, flush, no terminal frame
	ts1.Close()

	if st, err := mgr1.Status(id); err != nil || st.State != job.StateQueued {
		t.Fatalf("job after shutdown = %+v, %v; want queued (resumable) — raise the spec budget", st, err)
	}

	// Second daemon life over the same store.
	store2, err := job.OpenStore(storeDir)
	if err != nil {
		t.Fatal(err)
	}
	mgr2 := job.NewManager(store2, 1)
	if err := mgr2.Recover(); err != nil {
		t.Fatal(err)
	}
	defer mgr2.Close()
	ts2 := httptest.NewServer(serve.New(mgr2))
	defer ts2.Close()

	var st job.Status
	getJSON(t, ts2.URL+"/v1/jobs/"+id, http.StatusOK, &st)
	if !st.Resumed {
		t.Fatalf("recovered job not marked resumed: %+v", st)
	}

	// A late subscriber replays from the start and follows to completion;
	// the stream is the full record log, byte for byte.
	stream2, err := http.Get(ts2.URL + "/v1/jobs/" + id + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	evs := readSSE(t, stream2.Body, func(ev sseEvent) bool { return ev.event == "done" })
	stream2.Body.Close()
	if got := recordData(evs); !bytes.Equal(got, refBytes) {
		t.Fatalf("replayed SSE stream differs from uninterrupted run: %d vs %d bytes", len(got), len(refBytes))
	}
	last := evs[len(evs)-1]
	if last.event != "done" {
		t.Fatalf("stream ended with %q, want done", last.event)
	}
	var final job.Status
	if err := json.Unmarshal([]byte(last.data), &final); err != nil {
		t.Fatal(err)
	}
	if final.State != job.StateDone || final.Result == nil {
		t.Fatalf("done event carries %+v", final)
	}

	// The records endpoint and the on-disk log agree with the reference too.
	rresp, err := http.Get(ts2.URL + "/v1/jobs/" + id + "/records")
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(rresp.Body)
	rresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(body, refBytes) {
		t.Fatalf("records endpoint differs from reference log: %d vs %d bytes", len(body), len(refBytes))
	}
	onDisk, err := os.ReadFile(store2.LogPath(id))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(onDisk, refBytes) {
		t.Fatalf("served record log differs from reference: %d vs %d bytes", len(onDisk), len(refBytes))
	}
}

func getJSON(t *testing.T, url string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s = %d (%s), want %d", url, resp.StatusCode, body, wantCode)
	}
	if v != nil {
		if err := json.Unmarshal(body, v); err != nil {
			t.Fatalf("GET %s: %v in %s", url, err, body)
		}
	}
}

// TestServedAPI covers the request/response surface: submission validation
// codes, status and result codes across the job lifecycle, cancellation,
// and the SSE from-offset replay.
func TestServedAPI(t *testing.T) {
	store, err := job.OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	mgr := job.NewManager(store, 1)
	defer mgr.Close()
	ts := httptest.NewServer(serve.New(mgr))
	defer ts.Close()

	post := func(body string) (int, string) {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(data)
	}

	if code, body := post(`{"model": "nope"}`); code != http.StatusBadRequest {
		t.Errorf("bad model = %d (%s), want 400", code, body)
	}
	if code, body := post(`{"model": "mobilenet-v1", "budgetz": 1}`); code != http.StatusBadRequest {
		t.Errorf("unknown field = %d (%s), want 400", code, body)
	}
	getJSON(t, ts.URL+"/v1/jobs/ghost", http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/healthz", http.StatusOK, nil)

	spec, err := json.Marshal(job.Submit{ID: "api-1", Spec: tinySpec(2042)})
	if err != nil {
		t.Fatal(err)
	}
	code, body := post(string(spec))
	if code != http.StatusCreated {
		t.Fatalf("submit = %d (%s)", code, body)
	}
	var st job.Status
	if err := json.Unmarshal([]byte(body), &st); err != nil {
		t.Fatal(err)
	}
	if st.ID != "api-1" || st.Seed != 2042 {
		t.Errorf("submit status = %+v", st)
	}
	if code, _ := post(string(spec)); code != http.StatusConflict {
		t.Errorf("duplicate submit = %d, want 409", code)
	}

	// Stream to completion, then re-fetch from an offset: the suffix replay
	// must line up with the full stream.
	stream, err := http.Get(ts.URL + "/v1/jobs/api-1/stream")
	if err != nil {
		t.Fatal(err)
	}
	evs := readSSE(t, stream.Body, func(ev sseEvent) bool { return ev.event == "done" })
	stream.Body.Close()
	full := recordData(evs)
	n := bytes.Count(full, []byte("\n"))
	if n == 0 {
		t.Fatal("stream carried no records")
	}

	from := n - 3
	stream2, err := http.Get(fmt.Sprintf("%s/v1/jobs/api-1/stream?from=%d", ts.URL, from))
	if err != nil {
		t.Fatal(err)
	}
	tailEvs := readSSE(t, stream2.Body, func(ev sseEvent) bool { return ev.event == "done" })
	stream2.Body.Close()
	tail := recordData(tailEvs)
	lines := bytes.SplitAfter(full, []byte("\n"))
	want := bytes.Join(lines[from:], nil)
	if !bytes.Equal(tail, want) {
		t.Fatalf("from=%d replay differs from the full stream's suffix", from)
	}
	if first := tailEvs[0]; first.event == "record" && first.id != fmt.Sprint(from) {
		t.Errorf("first replayed event id = %s, want %d", first.id, from)
	}
	if resp, err := http.Get(ts.URL + "/v1/jobs/api-1/stream?from=bogus"); err != nil || resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bogus from = %v, %v; want 400", resp.StatusCode, err)
	}

	var res job.Result
	getJSON(t, ts.URL+"/v1/jobs/api-1/result", http.StatusOK, &res)
	if res.State != job.StateDone || res.Records != n {
		t.Errorf("result = %+v, want done with %d records", res, n)
	}
	var list []job.Status
	getJSON(t, ts.URL+"/v1/jobs", http.StatusOK, &list)
	if len(list) != 1 || list[0].ID != "api-1" {
		t.Errorf("list = %+v", list)
	}

	// Cancel: terminal jobs report canceled=false; a fresh queued job (the
	// manager is busy with nothing, so it starts running) cancels true.
	req, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/api-1", nil)
	if err != nil {
		t.Fatal(err)
	}
	cresp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	var cancelOut struct {
		Canceled bool `json:"canceled"`
	}
	if err := json.NewDecoder(cresp.Body).Decode(&cancelOut); err != nil {
		t.Fatal(err)
	}
	cresp.Body.Close()
	if cresp.StatusCode != http.StatusOK || cancelOut.Canceled {
		t.Errorf("cancel of a finished job = %d %+v, want 200 canceled=false", cresp.StatusCode, cancelOut)
	}
}
