package main

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/backend"
	"repro/internal/fleet"
	"repro/internal/job"
	"repro/internal/record"
	"repro/internal/serve"
)

// servedOptions parameterizes the serving-throughput benchmark.
type servedOptions struct {
	Jobs        int
	Concurrency int
	Arrival     string
	Period      time.Duration
	Seed        int64
	Out         string
	Baseline    string
	MaxRegress  float64
}

// latencyStats are submit→done percentiles in milliseconds, computed from
// the daemon's own admission/finish timestamps so they include queueing.
type latencyStats struct {
	P50MS float64 `json:"p50_ms"`
	P95MS float64 `json:"p95_ms"`
	P99MS float64 `json:"p99_ms"`
}

// fanoutPoint is one SSE fan-out measurement: how long it takes N
// concurrent subscribers to each drain a finished job's full stream.
type fanoutPoint struct {
	Subscribers int     `json:"subscribers"`
	TotalMS     float64 `json:"total_ms"`
	PerSubMS    float64 `json:"per_subscriber_ms"`
}

// servedReport is the BENCH_served.json schema. The two legs run the same
// deterministic fleet against the same daemon build; only the shared
// measurement cache differs, so CacheSpeedup isolates the cross-job reuse
// win and ByteIdentical proves the cache changed no job's output.
type servedReport struct {
	Jobs        int    `json:"jobs"`
	Arrival     string `json:"arrival"`
	Seed        int64  `json:"seed"`
	Concurrency int    `json:"concurrency"`
	GOMAXPROCS  int    `json:"gomaxprocs"`

	ColdWallMS     float64 `json:"cold_wall_ms"`
	WarmWallMS     float64 `json:"warm_wall_ms"`
	ColdJobsPerSec float64 `json:"cold_jobs_per_sec"`
	WarmJobsPerSec float64 `json:"warm_jobs_per_sec"`
	// CacheSpeedup is cold wall / warm wall: how much faster the fleet
	// finishes with the shared measurement cache on.
	CacheSpeedup float64 `json:"cache_speedup"`

	ColdLatency latencyStats `json:"cold_latency"`
	WarmLatency latencyStats `json:"warm_latency"`

	Cache        backend.SharedCacheStats `json:"cache"`
	CacheHitRate float64                  `json:"cache_hit_rate"`
	// ByteIdentical: every job's record log is byte-identical between the
	// cold and warm legs — the cache is observationally invisible.
	ByteIdentical bool `json:"byte_identical"`

	SSEFanout []fanoutPoint `json:"sse_fanout"`
}

// servedLegResult is what one fleet leg leaves behind.
type servedLegResult struct {
	wall      time.Duration
	latencies []time.Duration
	records   map[string][]byte // job ID → /records response bytes
	stats     backend.SharedCacheStats
	hasStats  bool
}

// startDaemon builds the real daemon — store, manager, HTTP server — on a
// loopback listener and returns its base URL plus a shutdown func.
func startDaemon(dir string, concurrency int, shared *backend.SharedCache) (string, *job.Manager, func(), error) {
	store, err := job.OpenStore(dir)
	if err != nil {
		return "", nil, nil, err
	}
	mgr := job.NewManagerWith(store, job.ManagerOptions{Concurrency: concurrency, Shared: shared})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		mgr.Close()
		return "", nil, nil, err
	}
	srv := &http.Server{Handler: serve.New(mgr)}
	go func() { _ = srv.Serve(ln) }()
	stop := func() {
		_ = srv.Close()
		mgr.Close()
	}
	return "http://" + ln.Addr().String(), mgr, stop, nil
}

// servedLeg drives one full fleet through a fresh daemon over loopback
// HTTP: submit each job at its generated offset, wait for the fleet to
// drain, then collect per-job latencies (from the daemon's timestamps) and
// record logs (from /records).
func servedLeg(ctx context.Context, jobs []fleet.Job, concurrency int, shared *backend.SharedCache) (*servedLegResult, error) {
	dir, err := os.MkdirTemp("", "bench-served-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	base, mgr, stop, err := startDaemon(dir, concurrency, shared)
	if err != nil {
		return nil, err
	}
	defer stop()

	start := time.Now()
	for _, fj := range jobs {
		if d := time.Until(start.Add(fj.Offset)); d > 0 {
			select {
			case <-ctx.Done():
				return nil, ctx.Err()
			case <-time.After(d):
			}
		}
		if err := submitJob(ctx, base, fj); err != nil {
			return nil, err
		}
	}
	// Drain: poll the list endpoint until every job is terminal. The poll
	// runs identically in both legs, but it still costs CPU the daemon could
	// spend tuning (encoding the full status list), so it is deliberately
	// coarse — per-job latency comes from the daemon's own timestamps, not
	// from poll observations, and loses nothing to the coarseness.
	var list []job.Status
	for {
		if err := getJSON(ctx, base+"/v1/jobs", &list); err != nil {
			return nil, err
		}
		done := 0
		for _, st := range list {
			if st.State.Terminal() {
				if st.State != job.StateDone {
					return nil, fmt.Errorf("job %s ended %s: %s", st.ID, st.State, st.Error)
				}
				done++
			}
		}
		if done == len(jobs) {
			break
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case <-time.After(25 * time.Millisecond):
		}
	}
	res := &servedLegResult{wall: time.Since(start), records: make(map[string][]byte, len(jobs))}

	for _, st := range list {
		if st.FinishedAt == nil {
			return nil, fmt.Errorf("job %s is done without a finish timestamp", st.ID)
		}
		res.latencies = append(res.latencies, st.FinishedAt.Sub(st.SubmittedAt))
		body, err := getBytes(ctx, base+"/v1/jobs/"+st.ID+"/records")
		if err != nil {
			return nil, err
		}
		if len(body) == 0 {
			return nil, fmt.Errorf("job %s served an empty record log", st.ID)
		}
		res.records[st.ID] = body
	}
	res.stats, res.hasStats = mgr.SharedCacheStats()
	return res, nil
}

func submitJob(ctx context.Context, base string, fj fleet.Job) error {
	body, err := json.Marshal(job.Submit{ID: fj.ID, Spec: fj.Spec})
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, base+"/v1/jobs", bytes.NewReader(body))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		msg, _ := io.ReadAll(resp.Body)
		return fmt.Errorf("submit %s: %d: %s", fj.ID, resp.StatusCode, msg)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return nil
}

func getJSON(ctx context.Context, url string, v any) error {
	body, err := getBytes(ctx, url)
	if err != nil {
		return err
	}
	return json.Unmarshal(body, v)
}

func getBytes(ctx context.Context, url string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		msg, _ := io.ReadAll(resp.Body)
		return nil, fmt.Errorf("GET %s: %d: %s", url, resp.StatusCode, msg)
	}
	return io.ReadAll(resp.Body)
}

// drainSSE reads one /stream response to its done event and returns the
// record data re-joined into JSON-lines form — the byte layout of the
// record log itself.
func drainSSE(r io.Reader) ([]byte, error) {
	var buf bytes.Buffer
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	event, data := "", ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if event == "done" {
				return buf.Bytes(), nil
			}
			if event == "record" {
				buf.WriteString(data)
				buf.WriteByte('\n')
			}
			event, data = "", ""
		case strings.HasPrefix(line, "event: "):
			event = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			data = strings.TrimPrefix(line, "data: ")
		case strings.HasPrefix(line, "id: "):
		default:
			return nil, fmt.Errorf("unexpected SSE line %q", line)
		}
	}
	return nil, fmt.Errorf("stream ended without a done event: %v", sc.Err())
}

// measureFanout times n concurrent subscribers each draining jobID's full
// SSE stream from a finished job, and checks every drained stream against
// the record log bytes.
func measureFanout(ctx context.Context, base, jobID string, want []byte, n int) (fanoutPoint, error) {
	var wg sync.WaitGroup
	errs := make([]error, n)
	start := time.Now()
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/v1/jobs/"+jobID+"/stream", nil)
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := http.DefaultClient.Do(req)
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			got, err := drainSSE(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if !bytes.Equal(got, want) {
				errs[i] = fmt.Errorf("subscriber %d drained %d bytes, record log has %d", i, len(got), len(want))
			}
		}(i)
	}
	wg.Wait()
	total := time.Since(start)
	for _, err := range errs {
		if err != nil {
			return fanoutPoint{}, err
		}
	}
	ms := float64(total.Microseconds()) / 1000
	return fanoutPoint{Subscribers: n, TotalMS: ms, PerSubMS: ms / float64(n)}, nil
}

// percentiles summarizes sorted latencies.
func percentiles(lats []time.Duration) latencyStats {
	if len(lats) == 0 {
		return latencyStats{}
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	at := func(q float64) float64 {
		idx := int(q*float64(len(sorted))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		return float64(sorted[idx].Microseconds()) / 1000
	}
	return latencyStats{P50MS: at(0.50), P95MS: at(0.95), P99MS: at(0.99)}
}

// checkServedBaseline gates a fresh served report against the committed
// one. The fleet sizes may differ (CI runs a small smoke fleet against the
// committed 64-job report), so the gate uses size-independent invariants:
// byte-identity must hold, the cache must actually hit, and the cache
// speedup ratio must not collapse below baseline/factor.
func checkServedBaseline(baseData []byte, path string, cur servedReport, factor float64) error {
	var base servedReport
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	if base.CacheSpeedup <= 0 {
		return fmt.Errorf("baseline %s has no cache_speedup", path)
	}
	limit := base.CacheSpeedup / factor
	fmt.Printf("baseline check: cache speedup %.2fx vs baseline %.2fx (floor %.2fx)\n",
		cur.CacheSpeedup, base.CacheSpeedup, limit)
	if cur.CacheSpeedup < limit {
		return fmt.Errorf("cache speedup regressed: %.2fx below baseline %.2fx / %.1f = %.2fx",
			cur.CacheSpeedup, base.CacheSpeedup, factor, limit)
	}
	return nil
}

// runServed is the -served entry point: generate a deterministic fleet,
// run it cold (no shared cache) and warm (shared cache) through the real
// daemon over loopback HTTP, verify per-job byte-identity between the
// legs, measure SSE fan-out at 1/8/64 subscribers, and write
// BENCH_served.json.
func runServed(ctx context.Context, opts servedOptions) error {
	var baseData []byte
	var err error
	if opts.Baseline != "" {
		if baseData, err = os.ReadFile(opts.Baseline); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	jobs, err := fleet.Generate(fleet.Options{
		Jobs:      opts.Jobs,
		Seed:      opts.Seed,
		Arrival:   opts.Arrival,
		Period:    opts.Period,
		Templates: fleet.DefaultTemplates(),
	})
	if err != nil {
		return err
	}
	fmt.Printf("served bench: %d jobs, %s arrival, daemon concurrency %d, GOMAXPROCS %d\n",
		opts.Jobs, opts.Arrival, opts.Concurrency, runtime.GOMAXPROCS(0))

	cold, err := servedLeg(ctx, jobs, opts.Concurrency, nil)
	if err != nil {
		return fmt.Errorf("cold leg: %w", err)
	}
	coldMS := float64(cold.wall.Microseconds()) / 1000
	fmt.Printf("cold (no shared cache):  %8.1f ms (%.2f jobs/sec)\n", coldMS, float64(opts.Jobs)/cold.wall.Seconds())

	warm, err := servedLeg(ctx, jobs, opts.Concurrency, backend.NewSharedCache(0))
	if err != nil {
		return fmt.Errorf("warm leg: %w", err)
	}
	warmMS := float64(warm.wall.Microseconds()) / 1000
	fmt.Printf("warm (shared cache):     %8.1f ms (%.2f jobs/sec)\n", warmMS, float64(opts.Jobs)/warm.wall.Seconds())
	if !warm.hasStats {
		return fmt.Errorf("warm leg ran without a shared cache")
	}
	fmt.Printf("cache: %d hits / %d misses (%.1f%% hit rate), %d entries, %d evictions\n",
		warm.stats.Hits, warm.stats.Misses, 100*warm.stats.HitRate(), warm.stats.Entries, warm.stats.Evictions)

	// Byte-identity across legs: the shared cache must not change a single
	// job's record log. Walk the fleet, not the map, so divergence output is
	// deterministic.
	identical := len(cold.records) == len(warm.records)
	for _, fj := range jobs {
		if !bytes.Equal(cold.records[fj.ID], warm.records[fj.ID]) {
			identical = false
			fmt.Printf("DIVERGENCE: job %s record log differs between cold and warm legs\n", fj.ID)
		}
	}

	// SSE fan-out over a finished job on a fresh daemon life (recovered
	// store): measures pure replay fan-out without tuning in the background.
	fanout, err := measureFanoutLegs(ctx, jobs, opts.Concurrency, warm.records)
	if err != nil {
		return fmt.Errorf("fan-out: %w", err)
	}

	r := servedReport{
		Jobs:           opts.Jobs,
		Arrival:        opts.Arrival,
		Seed:           opts.Seed,
		Concurrency:    opts.Concurrency,
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		ColdWallMS:     coldMS,
		WarmWallMS:     warmMS,
		ColdJobsPerSec: float64(opts.Jobs) / cold.wall.Seconds(),
		WarmJobsPerSec: float64(opts.Jobs) / warm.wall.Seconds(),
		ColdLatency:    percentiles(cold.latencies),
		WarmLatency:    percentiles(warm.latencies),
		Cache:          warm.stats,
		CacheHitRate:   warm.stats.HitRate(),
		ByteIdentical:  identical,
		SSEFanout:      fanout,
	}
	if warmMS > 0 {
		r.CacheSpeedup = coldMS / warmMS
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	if err := record.WriteFileAtomic(opts.Out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("cache speedup %.2fx, byte-identical: %v; wrote %s\n", r.CacheSpeedup, identical, opts.Out)
	if !identical {
		return fmt.Errorf("warm leg record streams diverged from cold leg")
	}
	if r.Cache.Hits == 0 {
		return fmt.Errorf("shared cache never hit: the fleet shape is not exercising cross-job reuse")
	}
	if opts.Baseline != "" {
		return checkServedBaseline(baseData, opts.Baseline, r, opts.MaxRegress)
	}
	return nil
}

// measureFanoutLegs runs one tiny single-job daemon and times 1/8/64
// concurrent SSE subscribers replaying the finished job's stream,
// verifying every drained stream byte-for-byte against the cold leg's
// record log.
func measureFanoutLegs(ctx context.Context, jobs []fleet.Job, concurrency int, records map[string][]byte) ([]fanoutPoint, error) {
	// Re-run just the first job on a fresh daemon so the replay source is a
	// closed stream, then fan out against it.
	fj := jobs[0]
	dir, err := os.MkdirTemp("", "bench-fanout-*")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)
	base, _, stop, err := startDaemon(dir, concurrency, nil)
	if err != nil {
		return nil, err
	}
	defer stop()
	if err := submitJob(ctx, base, fj); err != nil {
		return nil, err
	}
	want := records[fj.ID]
	// The first drain doubles as the completion wait: SSE follows the live
	// run to its done event.
	first, err := measureFanout(ctx, base, fj.ID, want, 1)
	if err != nil {
		return nil, err
	}
	_ = first // includes the job's runtime; replay points below are the signal
	var out []fanoutPoint
	for _, n := range []int{1, 8, 64} {
		pt, err := measureFanout(ctx, base, fj.ID, want, n)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}
