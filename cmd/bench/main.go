// Command bench times the deterministic graph scheduler on a fixed 8-task
// tuning run and writes the serial-vs-parallel wall-clock comparison to a
// JSON file (the `make bench` artifact BENCH_tune.json).
//
// Both legs hand the same task list to the graph scheduler with the same
// seeds and budget policy: the serial leg runs task-concurrency 1 with a
// single measurement worker, the parallel leg runs -task-concurrency tasks
// in deterministic rounds with a full worker pool per task. The scheduler's
// contract is that results are bit-identical across the whole grid; the
// benchmark verifies that and fails (exit 1) on any divergence, making it a
// determinism check as much as a speed report. Speedup scales with the
// cores the host exposes — on a single-core machine both legs time alike
// while the sample comparison still must hold.
//
// Usage:
//
//	bench -out BENCH_tune.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"os/signal"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/graph"
	"repro/internal/job"
	"repro/internal/record"
	"repro/internal/sched"
	"repro/internal/tuner"
)

// report is the BENCH_tune.json schema.
type report struct {
	Model           string `json:"model"`
	Tasks           int    `json:"tasks"`
	Tuner           string `json:"tuner"`
	Budget          int    `json:"budget"`
	PlanSize        int    `json:"plan_size"`
	Seed            int64  `json:"seed"`
	Workers         int    `json:"workers"`
	TaskConcurrency int    `json:"task_concurrency"`
	BudgetPolicy    string `json:"budget_policy"`
	// GOMAXPROCSSerial and GOMAXPROCSParallel record each leg's scheduler
	// width. They differ on purpose: the serial leg is a single-threaded
	// reference no matter the host, while the parallel leg is pinned to
	// NumCPU so its speedup reflects the hardware instead of an inherited
	// GOMAXPROCS (an earlier report ran both legs at 1, making its
	// "speedup" a no-op comparison).
	GOMAXPROCSSerial   int `json:"gomaxprocs_serial"`
	GOMAXPROCSParallel int `json:"gomaxprocs_parallel"`
	// SerialMS and ParallelWallMS are each leg's wall-clock, directly
	// comparable to each other (Speedup is their ratio). The parallel field
	// says "wall" explicitly to keep it from being read against
	// parallel_phase_cpu_ms, which is CPU time and routinely larger.
	SerialMS         float64 `json:"serial_ms"`
	ParallelWallMS   float64 `json:"parallel_wall_ms"`
	Speedup          float64 `json:"speedup"`
	IdenticalSamples bool    `json:"identical_samples"`
	// Per-phase breakdown of each leg, in milliseconds, keyed by tuner
	// phase (init_set, surrogate_train, candidate_selection, measurement).
	// Phases sum the busy time of all tasks: in the serial leg (one task,
	// one worker at a time) that sum is wall-clock, but in the parallel leg
	// concurrent sessions accumulate simultaneously, so its totals are CPU
	// time — they routinely exceed the leg's wall-clock and are NOT
	// comparable to serial_phase_ms. The field name says so.
	SerialPhaseMS      map[string]float64 `json:"serial_phase_ms"`
	ParallelPhaseCPUMS map[string]float64 `json:"parallel_phase_cpu_ms"`
}

func main() {
	model := flag.String("model", "mobilenet-v1", "model supplying the benchmark tasks")
	nTasks := flag.Int("tasks", 8, "number of tasks tuned (taken from the model's conv tasks)")
	tunerName := flag.String("tuner", "autotvm", "tuner to benchmark")
	budget := flag.Int("budget", 96, "measurement budget per task")
	plan := flag.Int("plan", 24, "batch/initialization size")
	seed := flag.Int64("seed", 2021, "base random seed")
	workers := flag.Int("workers", 8, "measurement worker pool per task in the parallel leg")
	taskConc := flag.Int("task-concurrency", 0, "scheduler task concurrency of the parallel leg (<=0: same as -workers)")
	policyName := flag.String("budget-policy", "uniform", "scheduler budget policy for both legs: uniform | adaptive")
	out := flag.String("out", "", "output JSON path (default BENCH_tune.json, or BENCH_served.json with -served)")
	baseline := flag.String("baseline", "", "committed report to regression-check against (tuner mode: serial candidate_selection phase, typically BENCH_tune.json; served mode: cache speedup and byte-identity, typically BENCH_served.json); empty: skip")
	maxRegress := flag.Float64("max-regress", 3.0, "with -baseline: fail past this regression factor (generous by default — shared CI hosts are noisy)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the whole run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (after the run) to this file")
	servedMode := flag.Bool("served", false, "benchmark the serving daemon (loopback HTTP fleet) instead of the tuner")
	servedJobs := flag.Int("served-jobs", 64, "with -served: fleet size")
	servedConc := flag.Int("served-concurrency", 2, "with -served: daemon job concurrency")
	servedArrival := flag.String("served-arrival", "burst", "with -served: arrival pattern (burst | uniform | poisson)")
	servedPeriod := flag.Duration("served-period", time.Second, "with -served: arrival window for uniform/poisson")
	flag.Parse()
	if *taskConc <= 0 {
		*taskConc = *workers
	}
	if *out == "" {
		if *servedMode {
			*out = "BENCH_served.json"
		} else {
			*out = "BENCH_tune.json"
		}
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Profiled body in its own function so deferred profile teardown runs
	// before os.Exit.
	if err := profiledRun(ctx, *cpuProfile, *memProfile, func(ctx context.Context) error {
		if *servedMode {
			return runServed(ctx, servedOptions{
				Jobs:        *servedJobs,
				Concurrency: *servedConc,
				Arrival:     *servedArrival,
				Period:      *servedPeriod,
				Seed:        *seed,
				Out:         *out,
				Baseline:    *baseline,
				MaxRegress:  *maxRegress,
			})
		}
		return run(ctx, *model, *tunerName, *nTasks, *budget, *plan, *seed, *workers, *taskConc, *policyName, *out, *baseline, *maxRegress)
	}); err != nil {
		fmt.Fprintln(os.Stderr, "bench:", err)
		os.Exit(1)
	}
}

// profiledRun wraps body with optional CPU and heap profiling: the CPU
// profile covers the whole body, the heap profile is snapshotted after a GC
// once the body returns.
func profiledRun(ctx context.Context, cpuProfile, memProfile string, body func(context.Context) error) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			_ = f.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "bench: close cpu profile:", cerr)
			}
		}()
	}
	err := body(ctx)
	if memProfile != "" {
		if werr := writeHeapProfile(memProfile); werr != nil && err == nil {
			err = werr
		}
	}
	return err
}

// writeHeapProfile snapshots the heap after a GC, the conventional way to
// capture live allocations at end of run.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}

func benchTasks(model string, n int) ([]*tuner.Task, error) {
	g, err := graph.Model(model)
	if err != nil {
		return nil, err
	}
	gts := graph.ExtractTasks(g, graph.ConvOnly)
	if len(gts) < n {
		return nil, fmt.Errorf("model %s has %d conv tasks, need %d", model, len(gts), n)
	}
	tasks := make([]*tuner.Task, n)
	for i := range tasks {
		if tasks[i], err = tuner.FromGraphTask(gts[i]); err != nil {
			return nil, err
		}
	}
	return tasks, nil
}

// leg hands the task list to the graph scheduler with the given task
// concurrency and measurement worker pool and returns the results in task
// order plus the wall-clock.
func leg(ctx context.Context, tasks []*tuner.Task, tunerName string, budget, plan int, seed int64, taskConc, measureWorkers int, policy sched.Policy) ([]tuner.Result, time.Duration, *tuner.PhaseTimes, error) {
	tn, err := job.NewTuner(tunerName)
	if err != nil {
		return nil, 0, nil, err
	}
	b, err := backend.New("gtx1080ti", seed)
	if err != nil {
		return nil, 0, nil, err
	}
	// One accumulator for the whole leg: PhaseTimes is concurrency-safe, so
	// tasks running in parallel fold into the same per-phase totals.
	phases := tuner.NewPhaseTimes()
	specs := make([]sched.Spec, len(tasks))
	for i, task := range tasks {
		specs[i] = sched.Spec{Task: task, Opts: tuner.Options{
			Budget:    budget,
			EarlyStop: -1,
			PlanSize:  plan,
			Seed:      seed + int64(i)*1000003,
			Workers:   measureWorkers,
			Phases:    phases,
		}}
	}
	start := time.Now()
	outs, err := sched.Run(ctx, tuner.AsOpener(tn), b, specs, sched.Options{
		TaskConcurrency: taskConc,
		Policy:          policy,
	})
	elapsed := time.Since(start)
	if err != nil {
		return nil, 0, nil, err
	}
	results := make([]tuner.Result, len(tasks))
	for _, o := range outs {
		results[o.Index] = o.Result
	}
	return results, elapsed, phases, nil
}

// printPhases writes the per-phase breakdown in a stable order.
func printPhases(p *tuner.PhaseTimes) {
	ms := p.Milliseconds()
	for _, phase := range []string{tuner.PhaseInitSet, tuner.PhaseSurrogateTrain, tuner.PhaseCandidateSelection, tuner.PhaseMeasurement} {
		if v, ok := ms[phase]; ok {
			fmt.Printf("  %-20s %8.1f ms\n", phase, v)
		}
	}
}

func sameSamples(a, b []active.Sample) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Config.Flat() != b[i].Config.Flat() ||
			math.Float64bits(a[i].GFLOPS) != math.Float64bits(b[i].GFLOPS) ||
			a[i].Valid != b[i].Valid {
			return false
		}
	}
	return true
}

// checkBaseline compares the fresh report's candidate_selection phase
// against a previously committed report, for both legs: the serial phase is
// pure single-thread math (the most stable number a shared host produces),
// and the parallel leg's CPU-time phase catches slowdowns that only appear
// when sessions run concurrently — contention, false sharing, per-session
// duplicated work — which the serial gate cannot see. A regression beyond
// factor on either leg fails the run. The baseline bytes are read by the
// caller before the output file is written, so -baseline and -out may name
// the same file.
func checkBaseline(baseData []byte, path string, cur report, factor float64) error {
	var base report
	if err := json.Unmarshal(baseData, &base); err != nil {
		return fmt.Errorf("baseline %s: %w", path, err)
	}
	check := func(leg string, basePhases, curPhases map[string]float64) error {
		b, ok := basePhases[tuner.PhaseCandidateSelection]
		if !ok || b <= 0 {
			return fmt.Errorf("baseline %s has no %s %s phase", path, leg, tuner.PhaseCandidateSelection)
		}
		c := curPhases[tuner.PhaseCandidateSelection]
		limit := b * factor
		fmt.Printf("baseline check: %s %s %.1f ms vs baseline %.1f ms (limit %.1f ms)\n",
			leg, tuner.PhaseCandidateSelection, c, b, limit)
		if c > limit {
			return fmt.Errorf("%s %s regressed: %.1f ms exceeds baseline %.1f ms x %.1f = %.1f ms",
				leg, tuner.PhaseCandidateSelection, c, b, factor, limit)
		}
		return nil
	}
	if err := check("serial", base.SerialPhaseMS, cur.SerialPhaseMS); err != nil {
		return err
	}
	return check("parallel", base.ParallelPhaseCPUMS, cur.ParallelPhaseCPUMS)
}

func run(ctx context.Context, model, tunerName string, nTasks, budget, plan int, seed int64, workers, taskConc int, policyName, out, baseline string, maxRegress float64) error {
	policy, err := sched.PolicyByName(policyName)
	if err != nil {
		return err
	}
	var baseData []byte
	if baseline != "" {
		if baseData, err = os.ReadFile(baseline); err != nil {
			return fmt.Errorf("baseline: %w", err)
		}
	}
	tasks, err := benchTasks(model, nTasks)
	if err != nil {
		return err
	}
	fmt.Printf("benchmarking %s on %d %s tasks (budget %d, plan %d, policy %s, GOMAXPROCS %d)\n",
		tunerName, nTasks, model, budget, plan, policy.Name(), runtime.GOMAXPROCS(0))

	serial, serialDur, serialPhases, err := leg(ctx, tasks, tunerName, budget, plan, seed, 1, 1, policy)
	if err != nil {
		return err
	}
	fmt.Printf("serial   (tasks x1, workers 1): %8.1f ms\n", float64(serialDur.Microseconds())/1000)
	printPhases(serialPhases)

	// The parallel leg gets the full machine: comparing it against serial
	// only means something when the scheduler may actually run wide.
	gmpSerial := runtime.GOMAXPROCS(0)
	gmpParallel := runtime.NumCPU()
	prev := runtime.GOMAXPROCS(gmpParallel)
	parRes, parDur, parPhases, err := leg(ctx, tasks, tunerName, budget, plan, seed, taskConc, workers, policy)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		return err
	}
	fmt.Printf("parallel (tasks x%d, workers %d): %8.1f ms\n", taskConc, workers, float64(parDur.Microseconds())/1000)
	printPhases(parPhases)

	identical := true
	for i := range serial {
		if !sameSamples(serial[i].Samples, parRes[i].Samples) {
			identical = false
			fmt.Printf("DIVERGENCE: task %s samples differ between legs\n", tasks[i].Name)
		}
	}

	r := report{
		Model:              model,
		Tasks:              nTasks,
		Tuner:              tunerName,
		Budget:             budget,
		PlanSize:           plan,
		Seed:               seed,
		Workers:            workers,
		TaskConcurrency:    taskConc,
		BudgetPolicy:       policy.Name(),
		GOMAXPROCSSerial:   gmpSerial,
		GOMAXPROCSParallel: gmpParallel,
		SerialMS:           float64(serialDur.Microseconds()) / 1000,
		ParallelWallMS:     float64(parDur.Microseconds()) / 1000,
		IdenticalSamples:   identical,
		SerialPhaseMS:      serialPhases.Milliseconds(),
		ParallelPhaseCPUMS: parPhases.Milliseconds(),
	}
	if r.ParallelWallMS > 0 {
		r.Speedup = r.SerialMS / r.ParallelWallMS
	}
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	// Atomic rename: a reader (or an interrupted run) never sees a partial
	// report file.
	if err := record.WriteFileAtomic(out, append(buf, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Printf("speedup %.2fx, identical samples: %v; wrote %s\n", r.Speedup, identical, out)
	if !identical {
		return fmt.Errorf("parallel leg diverged from serial leg")
	}
	if baseline != "" {
		return checkBaseline(baseData, baseline, r, maxRegress)
	}
	return nil
}
