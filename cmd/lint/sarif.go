package main

// SARIF 2.1.0 output, the static-analysis interchange format CI systems
// ingest natively. Only the subset the findings need is modeled; the
// structs marshal directly to the schema's field names.

import (
	"encoding/json"
	"io"

	"repro/internal/analysis"
)

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri,omitempty"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	// BaselineState distinguishes accepted debt ("unchanged") from findings
	// that should fail the run ("new"). Empty when no baseline is in play.
	BaselineState string `json:"baselineState,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// writeSARIF renders the findings as one SARIF run. haveBaseline controls
// whether baselineState is emitted.
func writeSARIF(w io.Writer, findings []finding, analyzers []analysis.Analyzer, haveBaseline bool) error {
	rules := make([]sarifRule, 0, len(analyzers))
	for _, a := range analyzers {
		rules = append(rules, sarifRule{
			ID:               a.Name(),
			ShortDescription: sarifMessage{Text: a.Doc()},
		})
	}
	results := make([]sarifResult, 0, len(findings))
	for _, f := range findings {
		r := sarifResult{
			RuleID:  f.Analyzer,
			Level:   "error",
			Message: sarifMessage{Text: f.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{URI: f.File},
					Region:           sarifRegion{StartLine: f.Line, StartColumn: f.Col},
				},
			}},
		}
		if haveBaseline {
			if f.Baselined {
				r.BaselineState = "unchanged"
			} else {
				r.BaselineState = "new"
			}
		}
		results = append(results, r)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "repro-lint", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(&log)
}
