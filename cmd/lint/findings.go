package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"repro/internal/analysis"
)

// finding is the external form of one diagnostic: flat fields, file path
// relative to the module root (slash-separated), so output and baselines
// are stable across checkouts.
type finding struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
	// Baselined marks findings matched by the baseline file; they are
	// reported but do not fail the run.
	Baselined bool `json:"baselined,omitempty"`
}

// toFindings converts diagnostics to findings, relativizing paths against
// the module root. Order is preserved (analysis.Run sorts by file, line,
// column, analyzer).
func toFindings(diags []analysis.Diagnostic, moduleRoot string) []finding {
	out := make([]finding, 0, len(diags))
	for _, d := range diags {
		file := d.Pos.Filename
		if rel, err := filepath.Rel(moduleRoot, file); err == nil {
			file = filepath.ToSlash(rel)
		}
		out = append(out, finding{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     d.Pos.Line,
			Col:      d.Pos.Column,
			Message:  d.Message,
		})
	}
	return out
}

// baselineFile is the on-disk baseline format. Findings recorded here are
// known debt: the lint run reports them but exits zero unless a finding
// NOT in the baseline appears.
type baselineFile struct {
	Comment  string    `json:"comment,omitempty"`
	Findings []finding `json:"findings"`
}

// baselineKey identifies a finding for baseline matching. Line and column
// are deliberately excluded: unrelated edits move findings around a file,
// and a baseline that rots on every reflow protects nothing.
func baselineKey(f finding) string {
	return f.File + "\x00" + f.Analyzer + "\x00" + f.Message
}

// loadBaseline reads a baseline file. A missing file is an empty baseline,
// so bootstrapping (and `-write-baseline` on a fresh checkout) needs no
// special casing.
func loadBaseline(path string) (*baselineFile, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		if os.IsNotExist(err) {
			return &baselineFile{}, nil
		}
		return nil, err
	}
	var b baselineFile
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing baseline %s: %w", path, err)
	}
	return &b, nil
}

// applyBaseline marks findings present in the baseline (as a multiset: two
// identical findings need two baseline entries) and returns the number
// that remain new.
func applyBaseline(findings []finding, b *baselineFile) (marked []finding, newCount int) {
	budget := map[string]int{}
	for _, f := range b.Findings {
		budget[baselineKey(f)]++
	}
	marked = make([]finding, len(findings))
	for i, f := range findings {
		k := baselineKey(f)
		if budget[k] > 0 {
			budget[k]--
			f.Baselined = true
		} else {
			newCount++
		}
		marked[i] = f
	}
	return marked, newCount
}

// writeBaseline rewrites the baseline file from the current findings,
// sorted for stable diffs.
func writeBaseline(path string, findings []finding) error {
	entries := make([]finding, len(findings))
	copy(entries, findings)
	for i := range entries {
		entries[i].Baselined = false
	}
	sort.Slice(entries, func(i, j int) bool {
		a, b := entries[i], entries[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	b := baselineFile{
		Comment:  "Accepted lint debt. Entries match on (file, analyzer, message); lines are informational. Regenerate with: go run ./cmd/lint -write-baseline",
		Findings: entries,
	}
	data, err := json.MarshalIndent(&b, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
