package main

import (
	"bytes"
	"encoding/json"
	"go/token"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/analysis"
)

func mkFinding(analyzer, file string, line, col int, msg string) finding {
	return finding{Analyzer: analyzer, File: file, Line: line, Col: col, Message: msg}
}

func TestToFindingsRelativizesPaths(t *testing.T) {
	root := string(filepath.Separator) + filepath.Join("mod", "root")
	diags := []analysis.Diagnostic{{
		Analyzer: "maprange",
		Pos:      token.Position{Filename: filepath.Join(root, "internal", "x", "x.go"), Line: 3, Column: 7},
		Message:  "m",
	}}
	fs := toFindings(diags, root)
	if len(fs) != 1 {
		t.Fatalf("got %d findings, want 1", len(fs))
	}
	want := mkFinding("maprange", "internal/x/x.go", 3, 7, "m")
	if fs[0] != want {
		t.Errorf("got %+v, want %+v", fs[0], want)
	}
}

func TestApplyBaselineMatchesOnFileAnalyzerMessage(t *testing.T) {
	b := &baselineFile{Findings: []finding{
		// Recorded at an old line: must still match after the code moved.
		mkFinding("walltime", "a.go", 10, 2, "calls time.Now"),
		mkFinding("maprange", "b.go", 5, 1, "map order escapes"),
	}}
	current := []finding{
		mkFinding("walltime", "a.go", 42, 9, "calls time.Now"), // baselined (moved)
		mkFinding("maprange", "b.go", 5, 1, "map order escapes"),
		mkFinding("seedflow", "c.go", 1, 1, "literal seed"), // new
	}
	marked, newCount := applyBaseline(current, b)
	if newCount != 1 {
		t.Fatalf("newCount = %d, want 1", newCount)
	}
	if !marked[0].Baselined || !marked[1].Baselined || marked[2].Baselined {
		t.Errorf("baselined flags = %v %v %v, want true true false",
			marked[0].Baselined, marked[1].Baselined, marked[2].Baselined)
	}
}

func TestApplyBaselineIsAMultiset(t *testing.T) {
	// One baseline entry covers exactly one occurrence of an identical
	// finding; a second identical finding is new.
	b := &baselineFile{Findings: []finding{mkFinding("errcmp", "a.go", 1, 1, "== sentinel")}}
	current := []finding{
		mkFinding("errcmp", "a.go", 1, 1, "== sentinel"),
		mkFinding("errcmp", "a.go", 9, 1, "== sentinel"),
	}
	marked, newCount := applyBaseline(current, b)
	if newCount != 1 {
		t.Fatalf("newCount = %d, want 1", newCount)
	}
	if !marked[0].Baselined || marked[1].Baselined {
		t.Errorf("multiset budget not respected: %v %v", marked[0].Baselined, marked[1].Baselined)
	}
}

func TestBaselineRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "baseline.json")
	findings := []finding{
		mkFinding("parfold", "z.go", 9, 3, "assigns captured"),
		mkFinding("maprange", "a.go", 2, 1, "escape"),
	}
	if err := writeBaseline(path, findings); err != nil {
		t.Fatal(err)
	}
	b, err := loadBaseline(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 2 {
		t.Fatalf("got %d findings, want 2", len(b.Findings))
	}
	// writeBaseline sorts by file, so a.go comes first regardless of the
	// input order.
	if b.Findings[0].File != "a.go" || b.Findings[1].File != "z.go" {
		t.Errorf("baseline not sorted: %s, %s", b.Findings[0].File, b.Findings[1].File)
	}
	_, newCount := applyBaseline(findings, b)
	if newCount != 0 {
		t.Errorf("round-tripped baseline left %d findings new, want 0", newCount)
	}
}

func TestLoadBaselineMissingFileIsEmpty(t *testing.T) {
	b, err := loadBaseline(filepath.Join(t.TempDir(), "nope.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Findings) != 0 {
		t.Errorf("missing baseline yielded %d findings", len(b.Findings))
	}
}

func TestCommittedBaselineIsLoadableAndEmpty(t *testing.T) {
	b, err := loadBaseline("baseline.json")
	if err != nil {
		t.Fatal(err)
	}
	// The tree is lint-clean; any entry here is unexplained debt.
	if len(b.Findings) != 0 {
		t.Errorf("committed baseline holds %d findings; the tree should be clean", len(b.Findings))
	}
}

func TestSARIFShape(t *testing.T) {
	findings := []finding{
		{Analyzer: "maprange", File: "a.go", Line: 3, Col: 7, Message: "escape", Baselined: true},
		{Analyzer: "seedflow", File: "b.go", Line: 1, Col: 1, Message: "literal seed"},
	}
	var buf bytes.Buffer
	if err := writeSARIF(&buf, findings, analysis.All(), true); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatalf("SARIF output is not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" || len(log.Runs) != 1 {
		t.Fatalf("version %q, %d runs", log.Version, len(log.Runs))
	}
	run := log.Runs[0]
	if run.Tool.Driver.Name != "repro-lint" {
		t.Errorf("driver name %q", run.Tool.Driver.Name)
	}
	if len(run.Tool.Driver.Rules) != len(analysis.All()) {
		t.Errorf("%d rules, want %d", len(run.Tool.Driver.Rules), len(analysis.All()))
	}
	if len(run.Results) != 2 {
		t.Fatalf("%d results, want 2", len(run.Results))
	}
	if run.Results[0].BaselineState != "unchanged" || run.Results[1].BaselineState != "new" {
		t.Errorf("baselineState = %q, %q; want unchanged, new",
			run.Results[0].BaselineState, run.Results[1].BaselineState)
	}
	loc := run.Results[0].Locations[0].PhysicalLocation
	if loc.ArtifactLocation.URI != "a.go" || loc.Region.StartLine != 3 || loc.Region.StartColumn != 7 {
		t.Errorf("location = %+v", loc)
	}
}

func TestSARIFEmptyFindingsStillValid(t *testing.T) {
	var buf bytes.Buffer
	if err := writeSARIF(&buf, nil, analysis.All(), false); err != nil {
		t.Fatal(err)
	}
	var log sarifLog
	if err := json.Unmarshal(buf.Bytes(), &log); err != nil {
		t.Fatal(err)
	}
	if log.Runs[0].Results == nil {
		t.Error("results must marshal as [] (never null) for SARIF consumers")
	}
}

// TestSeededViolationsCaught runs the real driver over a scratch module
// seeded with one deliberate violation per contract analyzer and asserts a
// nonzero exit with every analyzer represented.
func TestSeededViolationsCaught(t *testing.T) {
	if testing.Short() {
		t.Skip("loads a module with the source importer")
	}
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		path := filepath.Join(dir, name)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module scratch\n\ngo 1.21\n")
	write("bad/bad.go", `package bad

import (
	"errors"
	"fmt"
	"math/rand"
)

var ErrDone = errors.New("done")

func Keys(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Seed() *rand.Rand {
	return rand.New(rand.NewSource(1234))
}

func IsDone(err error) bool {
	return err == ErrDone
}

func Dump(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v)
	}
}
`)
	// Capture stdout so the JSON can be decoded.
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	code := run([]string{"-json", "-root", dir, "-run", "maprange,seedflow,errcmp"})
	w.Close()
	os.Stdout = old
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(r); err != nil {
		t.Fatal(err)
	}
	if code != 1 {
		t.Fatalf("exit code = %d, want 1; output:\n%s", code, buf.String())
	}
	var got []finding
	if err := json.Unmarshal(buf.Bytes(), &got); err != nil {
		t.Fatalf("bad JSON: %v\n%s", err, buf.String())
	}
	byAnalyzer := map[string]int{}
	for _, f := range got {
		byAnalyzer[f.Analyzer]++
		if f.File != "bad/bad.go" {
			t.Errorf("file = %q, want module-relative bad/bad.go", f.File)
		}
		if f.Line == 0 || f.Col == 0 {
			t.Errorf("finding missing position: %+v", f)
		}
	}
	for _, want := range []string{"maprange", "seedflow", "errcmp"} {
		if byAnalyzer[want] == 0 {
			t.Errorf("seeded %s violation not caught; findings: %v", want, byAnalyzer)
		}
	}
}

func TestRunRejectsUnknownAnalyzer(t *testing.T) {
	if code := run([]string{"-run", "nosuchthing", "-list"}); code != 2 {
		t.Errorf("exit code = %d, want 2 for unknown analyzer name", code)
	}
}
