// Command lint runs the repository's static-analysis suite
// (internal/analysis) over the module and reports findings.
//
// Usage:
//
//	go run ./cmd/lint ./...            # lint the whole module (text output)
//	go run ./cmd/lint -json ./...      # flat JSON findings
//	go run ./cmd/lint -sarif ./...     # SARIF 2.1.0 (CI code-scanning)
//	go run ./cmd/lint -run maprange,parfold  # only these analyzers
//	go run ./cmd/lint -list            # describe the analyzers and exit
//
// With -baseline FILE, findings recorded in FILE are reported but do not
// fail the run: the exit status reflects only findings that are new
// relative to the baseline. -write-baseline rewrites FILE from the
// current findings (accepting today's debt so CI fails only on growth).
//
// The package pattern is accepted for familiarity but the suite always
// loads the full module containing the working directory: the analyzers
// are cheap, and cross-package invariants (lock types, injected RNGs) only
// hold if every package is checked together.
//
// Exit status: 0 clean (or baseline-only findings), 1 new findings
// reported, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/analysis"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("lint", flag.ContinueOnError)
	jsonOut := fs.Bool("json", false, "emit findings as a JSON array")
	sarifOut := fs.Bool("sarif", false, "emit findings as SARIF 2.1.0")
	list := fs.Bool("list", false, "list the analyzers and their docs, then exit")
	root := fs.String("root", ".", "directory inside the module to lint")
	runNames := fs.String("run", "", "comma-separated analyzer names to run (default: all)")
	baselinePath := fs.String("baseline", "", "baseline file: findings recorded there do not fail the run")
	writeBl := fs.Bool("write-baseline", false, "rewrite the -baseline file from the current findings and exit")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	analyzers := analysis.All()
	if *runNames != "" {
		var unknown []string
		analyzers, unknown = analysis.ByNames(*runNames)
		if len(unknown) > 0 {
			fmt.Fprintf(os.Stderr, "lint: unknown analyzer(s): %s (see -list)\n", strings.Join(unknown, ", "))
			return 2
		}
	}
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return 0
	}
	if *jsonOut && *sarifOut {
		fmt.Fprintln(os.Stderr, "lint: -json and -sarif are mutually exclusive")
		return 2
	}
	if *writeBl && *baselinePath == "" {
		fmt.Fprintln(os.Stderr, "lint: -write-baseline requires -baseline FILE")
		return 2
	}

	loader, err := analysis.NewLoader(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		return 2
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		return 2
	}
	findings := toFindings(analysis.Run(pkgs, analyzers), loader.ModuleRoot())

	if *writeBl {
		if err := writeBaseline(*baselinePath, findings); err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			return 2
		}
		fmt.Fprintf(os.Stderr, "lint: wrote %d finding(s) to %s\n", len(findings), *baselinePath)
		return 0
	}

	failCount := len(findings)
	if *baselinePath != "" {
		b, err := loadBaseline(*baselinePath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			return 2
		}
		findings, failCount = applyBaseline(findings, b)
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(findings); err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			return 2
		}
	case *sarifOut:
		if err := writeSARIF(os.Stdout, findings, analyzers, *baselinePath != ""); err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			return 2
		}
	default:
		for _, f := range findings {
			suffix := ""
			if f.Baselined {
				suffix = " (baselined)"
			}
			fmt.Printf("%s:%d:%d: %s: %s%s\n", f.File, f.Line, f.Col, f.Analyzer, f.Message, suffix)
		}
		if len(findings) > 0 {
			fmt.Fprintf(os.Stderr, "lint: %d finding(s) in %d package(s), %d new\n", len(findings), len(pkgs), failCount)
		}
	}
	if failCount > 0 {
		return 1
	}
	return 0
}
