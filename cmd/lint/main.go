// Command lint runs the repository's static-analysis suite
// (internal/analysis) over the module and reports findings.
//
// Usage:
//
//	go run ./cmd/lint ./...          # lint the whole module (text output)
//	go run ./cmd/lint -json ./...    # machine-readable output
//	go run ./cmd/lint -list          # describe the analyzers and exit
//
// The package pattern is accepted for familiarity but the suite always
// loads the full module containing the working directory: the analyzers
// are cheap, and cross-package invariants (lock types, injected RNGs) only
// hold if every package is checked together.
//
// Exit status: 0 clean, 1 findings reported, 2 load or usage error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/analysis"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	list := flag.Bool("list", false, "list the analyzers and their docs, then exit")
	root := flag.String("root", ".", "directory inside the module to lint")
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return
	}

	loader, err := analysis.NewLoader(*root)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	pkgs, err := loader.LoadModule()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lint:", err)
		os.Exit(2)
	}
	diags := analysis.Run(pkgs, analyzers)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "lint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d.String())
		}
		if len(diags) > 0 {
			fmt.Fprintf(os.Stderr, "lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		}
	}
	if len(diags) > 0 {
		os.Exit(1)
	}
}
