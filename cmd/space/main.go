// Command space inspects the schedule configuration spaces of a model's
// tuning tasks: knob structure, space sizes and sample configurations.
//
// Usage:
//
//	space -model mobilenet-v1 [-ops conv|all] [-samples 2]
//	space -list
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"

	"repro/internal/graph"
	"repro/internal/tuner"
)

func main() {
	model := flag.String("model", "mobilenet-v1", "model name")
	ops := flag.String("ops", "conv", "task extraction: conv (conv2d+depthwise) or all (adds dense)")
	samples := flag.Int("samples", 1, "random sample configs to print per task")
	seed := flag.Int64("seed", 1, "sampling seed")
	list := flag.Bool("list", false, "list available models and exit")
	flag.Parse()

	if *list {
		for _, m := range graph.ModelNames {
			fmt.Println(m)
		}
		return
	}

	if err := run(*model, *ops, *samples, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "space:", err)
		os.Exit(1)
	}
}

func run(model, ops string, samples int, seed int64) error {
	g, err := graph.Model(model)
	if err != nil {
		return err
	}
	extract := graph.ConvOnly
	if ops == "all" {
		extract = graph.AllOps
	}
	if err := graph.ComputeStats(g).Print(os.Stdout); err != nil {
		return err
	}
	fg := graph.Fuse(g)
	fmt.Println(fg.FusionReport())

	tasks := graph.ExtractTasks(g, extract)
	fmt.Printf("%d tuning tasks:\n\n", len(tasks))
	rng := rand.New(rand.NewSource(seed))
	var total float64
	for _, gt := range tasks {
		t, err := tuner.FromGraphTask(gt)
		if err != nil {
			return err
		}
		fmt.Printf("%-22s %-55s x%d\n", t.Name, gt.Workload.Key(), gt.Count)
		fmt.Printf("  space size: %d configurations, %d knobs\n", t.Space.Size(), t.Space.NumKnobs())
		for _, k := range t.Space.Knobs() {
			fmt.Printf("    %-22s %6d options\n", k.Name(), k.Len())
		}
		for i := 0; i < samples; i++ {
			fmt.Printf("  sample: %s\n", t.Space.Random(rng))
		}
		total += float64(t.Space.Size())
		fmt.Println()
	}
	fmt.Printf("mean space size per task: %.3g configurations\n", total/float64(len(tasks)))
	return nil
}
