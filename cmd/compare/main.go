// Command compare races the search strategies on a single tuning task and
// prints their convergence traces side by side — the per-task view behind
// the paper's Fig. 4.
//
// Every (tuner, seed) cell of the grid is an independent run with its own
// run seed, so the grid executes on a worker pool (-parallel) while the
// averaged traces are folded in fixed seed order afterwards: the printed
// numbers are bit-identical for any -parallel value. All cells share one
// memoizing measurement backend: a configuration measured by one tuner at a
// given seed is never re-simulated when another tuner visits it (the BTED
// and BTED+BAO arms share their entire initialization set, for instance),
// which the final cache line quantifies.
//
// Usage:
//
//	compare -model mobilenet-v1 -task 5 -budget 512 -seeds 3
//	compare -workload conv2d:1,64,56,56,128,3,1,1 -device v100
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"

	"repro/internal/backend"
	"repro/internal/graph"
	"repro/internal/job"
	"repro/internal/par"
	"repro/internal/plot"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

func main() {
	model := flag.String("model", "mobilenet-v1", "model to extract the task from")
	taskIdx := flag.Int("task", 1, "1-based task index within the model")
	workload := flag.String("workload", "", "explicit workload instead of -model/-task: conv2d:N,C,H,W,F,K,S,P | depthwise:N,C,H,W,K,S,P | dense:N,CIn,COut")
	device := flag.String("device", "gtx1080ti", "simulated device: "+strings.Join(backend.Devices(), " | "))
	budget := flag.Int("budget", 512, "measurement budget")
	plan := flag.Int("plan", 32, "batch/init size")
	seeds := flag.Int("seeds", 2, "number of seeds to average")
	tuners := flag.String("tuners", "random,ga,autotvm,bted,bted+bao", "comma-separated tuner list")
	chart := flag.Bool("chart", true, "render an ASCII convergence chart")
	workers := flag.Int("workers", 0, "measurement worker pool per run (<=0: GOMAXPROCS)")
	parallel := flag.Int("parallel", 0, "(tuner, seed) runs executed concurrently (<=0: GOMAXPROCS)")
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *model, *taskIdx, *workload, *device, *budget, *plan, *seeds, *tuners, *chart, *workers, *parallel); err != nil {
		fmt.Fprintln(os.Stderr, "compare:", err)
		os.Exit(1)
	}
}

func parseWorkload(spec string) (tensor.Workload, error) {
	parts := strings.SplitN(spec, ":", 2)
	if len(parts) != 2 {
		return tensor.Workload{}, fmt.Errorf("workload spec %q needs kind:dims", spec)
	}
	var dims []int
	for _, f := range strings.Split(parts[1], ",") {
		v, err := strconv.Atoi(strings.TrimSpace(f))
		if err != nil {
			return tensor.Workload{}, fmt.Errorf("workload dim %q: %w", f, err)
		}
		dims = append(dims, v)
	}
	switch parts[0] {
	case "conv2d":
		if len(dims) != 8 {
			return tensor.Workload{}, fmt.Errorf("conv2d needs 8 dims N,C,H,W,F,K,S,P")
		}
		return tensor.Conv2D(dims[0], dims[1], dims[2], dims[3], dims[4], dims[5], dims[6], dims[7]), nil
	case "depthwise":
		if len(dims) != 7 {
			return tensor.Workload{}, fmt.Errorf("depthwise needs 7 dims N,C,H,W,K,S,P")
		}
		return tensor.DepthwiseConv2D(dims[0], dims[1], dims[2], dims[3], dims[4], dims[5], dims[6]), nil
	case "dense":
		if len(dims) != 3 {
			return tensor.Workload{}, fmt.Errorf("dense needs 3 dims N,CIn,COut")
		}
		return tensor.Dense(dims[0], dims[1], dims[2]), nil
	default:
		return tensor.Workload{}, fmt.Errorf("unknown workload kind %q", parts[0])
	}
}

func run(ctx context.Context, model string, taskIdx int, workloadSpec, deviceName string, budget, plan, seeds int, tunerList string, chart bool, workers, parallel int) error {
	var task *tuner.Task
	if workloadSpec != "" {
		w, err := parseWorkload(workloadSpec)
		if err != nil {
			return err
		}
		t, err := tuner.NewTask("custom", w)
		if err != nil {
			return err
		}
		task = t
	} else {
		g, err := graph.Model(model)
		if err != nil {
			return err
		}
		gts := graph.ExtractTasks(g, graph.ConvOnly)
		if taskIdx < 1 || taskIdx > len(gts) {
			return fmt.Errorf("task index %d out of range 1..%d", taskIdx, len(gts))
		}
		t, err := tuner.FromGraphTask(gts[taskIdx-1])
		if err != nil {
			return err
		}
		task = t
	}

	// One memoizing backend serves the whole grid: seeded measurement is a
	// pure function of (workload, config, noise seed), so revisits across
	// tuners and rounds hit the cache instead of the simulator.
	sim, err := backend.New(deviceName, 0)
	if err != nil {
		return err
	}
	cache := backend.NewCache(sim)

	fmt.Printf("task %s on %s\nworkload %s\nspace %d configurations\n\n",
		task.Name, deviceName, task.Workload.Key(), task.Space.Size())

	var names []string
	for _, name := range strings.Split(tunerList, ",") {
		name = strings.TrimSpace(name)
		// Validate every tuner name before spending any compute.
		if _, err := job.NewTuner(name); err != nil {
			return err
		}
		names = append(names, name)
	}
	if seeds < 1 {
		seeds = 1
	}
	if parallel <= 0 {
		parallel = par.Workers()
	}

	// Run the whole (tuner, seed) grid on the pool; each cell is fully
	// independent (own tuner instance, own run seed). The pool stops
	// dispatching cells once ctx is cancelled.
	traces := make([][][]float64, len(names))
	for ti := range traces {
		traces[ti] = make([][]float64, seeds)
	}
	cellErrs := make([]error, len(names)*seeds)
	par.ForContext(ctx, len(names)*seeds, parallel, func(k int) {
		ti, si := k/seeds, k%seeds
		tn, err := job.NewTuner(names[ti])
		if err != nil {
			return // validated above; unreachable
		}
		res, err := tn.Tune(ctx, task, cache, tuner.Options{
			Budget: budget, EarlyStop: -1, PlanSize: plan, Seed: int64(7 + si*1000),
			Workers: workers,
		})
		// An all-invalid run still has a (flat-zero) trace worth printing;
		// everything else, including cancellation, aborts the comparison.
		if err != nil && !errors.Is(err, tuner.ErrNoValidConfig) {
			cellErrs[k] = err
			return
		}
		traces[ti][si] = res.BestTrace()
	})
	if err := ctx.Err(); err != nil {
		return err
	}
	for _, cerr := range cellErrs {
		if cerr != nil {
			return cerr
		}
	}

	// Fold in fixed seed order so the averages are independent of pool
	// scheduling.
	var series []plot.Series
	fmt.Printf("%-10s %12s %12s %12s\n", "tuner", "best GFLOPS", "@25%", "@50%")
	for ti, name := range names {
		acc := make([]float64, budget)
		for s := 0; s < seeds; s++ {
			trace := traces[ti][s]
			last := 0.0
			for i := 0; i < budget; i++ {
				if i < len(trace) {
					last = trace[i]
				}
				acc[i] += last
			}
		}
		for i := range acc {
			acc[i] /= float64(seeds)
		}
		fmt.Printf("%-10s %12.1f %12.1f %12.1f\n", name, acc[budget-1], acc[budget/4-1], acc[budget/2-1])
		series = append(series, plot.Series{Name: name, Values: acc})
	}
	fmt.Printf("\nbackend cache: %d simulator calls, %d deduplicated revisits\n",
		cache.Misses(), cache.Hits())
	if chart {
		fmt.Println()
		if err := (plot.LineChart{
			Title:  fmt.Sprintf("best-so-far GFLOPS, %s on %s", task.Name, deviceName),
			XLabel: fmt.Sprintf("#configs (1..%d)", budget),
		}).Render(os.Stdout, series); err != nil {
			return err
		}
	}
	return nil
}
