// Command repro regenerates the paper's tables and figures on the
// simulated platform.
//
// Usage:
//
//	repro -exp fig4                 # convergence curves (Fig. 4)
//	repro -exp fig5                 # per-task MobileNet comparison (Fig. 5)
//	repro -exp table1               # end-to-end latency table (Table I)
//	repro -exp ablation             # design-choice ablations
//	repro -exp all                  # everything
//
// Scale: -scale quick (default) runs in minutes with the paper's
// qualitative shape; -scale paper uses the full settings (10 trials,
// budget 1024, early stop 400, 600 latency runs) and takes on the order of
// an hour of CPU time.
//
// Paper-scale Table I runs are checkpointable: -checkpoint <prefix> streams
// per-trial scheduler state to <prefix>.table1.<model>.<method>.trial<k>.snap
// files, and rerunning with -resume skips trials that finished and restores
// the interrupted one from its last checkpoint — with the same settings, the
// resumed study's numbers match an uninterrupted run's exactly.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"repro/internal/repro"
)

func main() {
	exp := flag.String("exp", "all", "fig4 | fig5 | table1 | baselines | batch | precision | crossdev | ablation | all")
	scale := flag.String("scale", "quick", "quick | paper")
	models := flag.String("models", "", "comma-separated Table I models (default: all five)")
	trials := flag.Int("trials", 0, "override trial count")
	budget := flag.Int("budget", 0, "override per-task budget")
	seed := flag.Int64("seed", 0, "override base seed")
	taskConc := flag.Int("task-concurrency", 1, "tasks tuned concurrently by the graph scheduler in pipeline experiments")
	budgetPolicy := flag.String("budget-policy", "uniform", "scheduler budget policy: uniform | adaptive")
	checkpoint := flag.String("checkpoint", "", "file prefix for per-trial scheduler checkpoints (table1); interrupted studies resume with -resume")
	resume := flag.Bool("resume", false, "continue from -checkpoint files: skip finished trials, restore in-flight ones")
	verbose := flag.Bool("v", false, "print progress lines")
	flag.Parse()

	cfg := repro.Quick()
	if *scale == "paper" {
		cfg = repro.Paper()
	}
	if *trials > 0 {
		cfg.Trials = *trials
	}
	if *budget > 0 {
		cfg.Budget = *budget
	}
	if *seed != 0 {
		cfg.Seed = *seed
	}
	cfg.TaskConcurrency = *taskConc
	cfg.BudgetPolicy = *budgetPolicy
	cfg.Checkpoint = *checkpoint
	cfg.Resume = *resume
	if *resume && *checkpoint == "" {
		fmt.Fprintln(os.Stderr, "repro: -resume requires -checkpoint (the prefix the interrupted run wrote to)")
		os.Exit(1)
	}
	if *verbose {
		cfg.Progress = func(s string) { fmt.Fprintln(os.Stderr, s) }
	}

	var modelList []string
	if *models != "" {
		modelList = strings.Split(*models, ",")
	}

	// Ctrl-C cancels the experiment context; partially-computed studies are
	// abandoned (their numbers would be misleading) and the exit is nonzero.
	// With -checkpoint, abandoned trials stay resumable from their files.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if err := run(ctx, *exp, cfg, modelList); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "repro: interrupted:", err)
		} else {
			fmt.Fprintln(os.Stderr, "repro:", err)
		}
		os.Exit(1)
	}
}

func run(ctx context.Context, exp string, cfg repro.Config, models []string) error {
	want := func(name string) bool { return exp == "all" || exp == name }
	ran := false

	if want("fig4") {
		ran = true
		results, err := repro.Fig4(ctx, cfg)
		if err != nil {
			return err
		}
		for _, r := range results {
			r.Chart(os.Stdout)
			fmt.Println()
			r.Print(os.Stdout, cfg.Budget/16)
			fmt.Println()
		}
	}
	if want("fig5") {
		ran = true
		res, err := repro.Fig5(ctx, cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		bted, bao := res.ImprovementSummary()
		fmt.Printf("\naverage GFLOPS improvement vs AutoTVM: BTED %+.2f%%, BTED+BAO %+.2f%%\n\n", bted, bao)
	}
	if want("table1") {
		ran = true
		res, err := repro.Table1(ctx, cfg, models)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		lat, variance := res.Headline()
		fmt.Printf("\nheadline (best row, BTED+BAO): latency %+.2f%%, variance %+.2f%%\n\n", lat, variance)
	}
	if want("batch") {
		ran = true
		res, err := repro.Batch(ctx, cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
	if want("precision") {
		ran = true
		res, err := repro.Precision(ctx, cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
	if want("baselines") {
		ran = true
		res, err := repro.Baselines(ctx, cfg)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
	if want("crossdev") {
		ran = true
		res, err := repro.CrossDevice(ctx, cfg, nil)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
		fmt.Printf("\nmean cross-device retention: %.1f%% (of natively-tuned performance)\n\n", res.MeanOffDiagonal())
	}
	if want("ablation") {
		ran = true
		results, err := repro.AllAblations(ctx, cfg)
		if err != nil {
			return err
		}
		for _, r := range results {
			r.Print(os.Stdout)
			fmt.Println()
		}
	}
	if !ran {
		return fmt.Errorf("unknown experiment %q (want fig4|fig5|table1|baselines|batch|precision|crossdev|ablation|all)", exp)
	}
	return nil
}
