// Command graph inspects and exports the built-in model graphs: summary
// statistics, the fused-kernel view, and JSON / Graphviz-DOT serialization.
//
// Usage:
//
//	graph -model resnet-18                    # stats + fusion report
//	graph -model vgg-16 -format json > g.json
//	graph -model mobilenet-v1 -format dot | dot -Tpng > g.png
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/graph"
)

func main() {
	model := flag.String("model", "mobilenet-v1", "model name (see -list)")
	format := flag.String("format", "summary", "summary | json | dot")
	list := flag.Bool("list", false, "list available models and exit")
	flag.Parse()

	if *list {
		for _, m := range graph.ModelNames {
			fmt.Println(m)
		}
		return
	}
	if err := run(*model, *format); err != nil {
		fmt.Fprintln(os.Stderr, "graph:", err)
		os.Exit(1)
	}
}

func run(model, format string) error {
	g, err := graph.Model(model)
	if err != nil {
		return err
	}
	switch format {
	case "summary":
		if err := graph.ComputeStats(g).Print(os.Stdout); err != nil {
			return err
		}
		fg := graph.Fuse(g)
		fmt.Println(fg.FusionReport())
		for _, f := range fg.TunableKernels() {
			fmt.Printf("  %-40s %s\n", f.String(), f.Anchor.Workload.Key())
		}
		tasks := graph.ExtractTasks(g, graph.ConvOnly)
		fmt.Printf("%d unique conv/depthwise tuning tasks\n", len(tasks))
		return nil
	case "json":
		return g.WriteJSON(os.Stdout)
	case "dot":
		return g.WriteDOT(os.Stdout)
	default:
		return fmt.Errorf("unknown format %q (want summary|json|dot)", format)
	}
}
