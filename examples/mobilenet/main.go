// MobileNet-v1 per-task comparison: a scaled-down version of the paper's
// Fig. 5 over the first handful of the 19 conv/depthwise tuning tasks,
// printing the number of sampled configurations and the GFLOPS ratio of
// BTED and BTED+BAO relative to AutoTVM.
//
// Run with:
//
//	go run ./examples/mobilenet
package main

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/graph"
	"repro/internal/tuner"
)

func main() {
	g := graph.MobileNetV1()
	fused := graph.Fuse(g)
	fmt.Println(fused.FusionReport())
	gtasks := graph.ExtractTasks(g, graph.ConvOnly)
	fmt.Printf("%d tuning tasks extracted (paper Fig. 5: T1..T19)\n\n", len(gtasks))

	tuners := []tuner.Tuner{tuner.NewAutoTVM(), tuner.NewBTED(), tuner.NewBTEDBAO()}
	fmt.Printf("%-6s | %26s | %22s\n", "task", "sampled configurations", "GFLOPS vs AutoTVM (%)")
	fmt.Printf("%-6s | %8s %8s %8s | %6s %6s %8s\n",
		"", "autotvm", "bted", "b+bao", "atvm", "bted", "b+bao")

	const nTasks = 6 // first six tasks keep the example under a minute
	for ti, gt := range gtasks[:nTasks] {
		task, err := tuner.FromGraphTask(gt)
		if err != nil {
			panic(err)
		}
		var configs [3]int
		var gflops [3]float64
		for mi, tn := range tuners {
			b, err := backend.New("gtx1080ti", int64(1000+ti*10+mi))
			if err != nil {
				panic(err)
			}
			res, err := tn.Tune(context.Background(), task, b, tuner.Options{
				Budget:    192,
				EarlyStop: 96,
				PlanSize:  32,
				Seed:      int64(500 + ti*100 + mi),
			})
			if err != nil {
				panic(err)
			}
			configs[mi] = res.Measurements
			gflops[mi] = res.Best.GFLOPS
		}
		ratio := func(mi int) float64 {
			if gflops[0] == 0 {
				return 0
			}
			return 100 * gflops[mi] / gflops[0]
		}
		fmt.Printf("T%-5d | %8d %8d %8d | %6.1f %6.1f %8.1f\n",
			ti+1, configs[0], configs[1], configs[2], ratio(0), ratio(1), ratio(2))
	}
	fmt.Println("\n(Fig. 5 full regeneration: go run ./cmd/repro -exp fig5)")
}
