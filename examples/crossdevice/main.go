// Cross-device retuning: tune the same convolution for four simulated
// devices and show that (a) the winning schedules differ per device and
// (b) a schedule carried from one device to another loses much of its
// performance — the motivation for automatic per-platform tuning that the
// paper's discussion section emphasizes.
//
// Run with:
//
//	go run ./examples/crossdevice
package main

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/hwsim"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

func main() {
	w := tensor.Conv2D(1, 128, 28, 28, 128, 3, 1, 1)
	task, err := tuner.NewTask("xdev.conv", w)
	if err != nil {
		panic(err)
	}
	deviceNames := []string{"gtx1080ti", "v100", "gtx1060", "jetsontx2"}

	fmt.Printf("workload %s\n\n", w.Key())
	best := make(map[string]tuner.Result, len(deviceNames))
	for i, name := range deviceNames {
		b, err := backend.New(name, int64(10+i))
		if err != nil {
			panic(err)
		}
		res, err := tuner.NewBTEDBAO().Tune(context.Background(), task, b, tuner.Options{
			Budget: 256, EarlyStop: 128, PlanSize: 32, Seed: int64(100 + i),
		})
		if err != nil {
			panic(err)
		}
		best[name] = res
		fmt.Printf("%-10s best %8.1f GFLOPS  (%s)\n", name, res.Best.GFLOPS, res.Best.Config)
	}

	fmt.Printf("\ncross-evaluation (%% of natively tuned performance):\n%-12s", "tuned on")
	for _, run := range deviceNames {
		fmt.Printf(" %10s", run)
	}
	fmt.Println()
	for _, from := range deviceNames {
		fmt.Printf("%-12s", from)
		for _, on := range deviceNames {
			dev, _ := hwsim.DeviceByName(on)
			est := hwsim.Estimator{Dev: dev}
			e := est.Estimate(w, best[from].Best.Config)
			native := est.Estimate(w, best[on].Best.Config)
			switch {
			case !e.Valid:
				fmt.Printf(" %10s", "infeasible")
			case native.Valid && native.GFLOPS > 0:
				fmt.Printf(" %9.1f%%", 100*e.GFLOPS/native.GFLOPS)
			default:
				fmt.Printf(" %10s", "-")
			}
		}
		fmt.Println()
	}

	fmt.Println("\nlowered schedule tuned for the Jetson TX2:")
	dev, _ := hwsim.DeviceByName("jetsontx2")
	fmt.Println(hwsim.Estimator{Dev: dev}.Lower(w, best["jetsontx2"].Best.Config))
}
