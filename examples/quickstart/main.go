// Quickstart: tune one convolution layer on the simulated GTX 1080 Ti and
// compare the paper's advanced active-learning framework (BTED + BAO)
// against the AutoTVM baseline on an identical measurement budget.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/tensor"
	"repro/internal/tuner"
)

func main() {
	// A ResNet-style 3x3 convolution: 64 -> 128 channels at 28x28.
	workload := tensor.Conv2D(1, 64, 28, 28, 128, 3, 1, 1)
	task, err := tuner.NewTask("quickstart.conv", workload)
	if err != nil {
		panic(err)
	}
	fmt.Printf("workload: %s\n", workload.Key())
	fmt.Printf("configuration space: %d points across %d knobs\n\n",
		task.Space.Size(), task.Space.NumKnobs())

	opts := tuner.Options{
		Budget:    256, // measurements allowed
		EarlyStop: -1,  // run the full budget for a clean comparison
		PlanSize:  32,  // initialization / batch size
		Seed:      42,
	}

	ctx := context.Background()
	for _, tn := range []tuner.Tuner{tuner.NewAutoTVM(), tuner.NewBTEDBAO()} {
		// Both tuners measure through the named-device backend registry;
		// seeded measurement makes their runs reproducible and independent.
		b, err := backend.New("gtx1080ti", 7)
		if err != nil {
			panic(err)
		}
		res, err := tn.Tune(ctx, task, b, opts)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-9s best %8.1f GFLOPS in %d measurements\n",
			tn.Name(), res.Best.GFLOPS, res.Measurements)
		trace := res.BestTrace()
		for _, at := range []int{31, 63, 127, 255} {
			if at < len(trace) {
				fmt.Printf("           after %3d configs: %8.1f GFLOPS\n", at+1, trace[at])
			}
		}
		fmt.Printf("           best config: %s\n\n", res.Best.Config)
	}
}
