// End-to-end deployment: a scaled-down version of the paper's Table I on
// SqueezeNet-v1.1 — tune every tunable node with AutoTVM and with
// BTED+BAO, deploy the best configuration of every node together, and
// compare mean inference latency and run-to-run variance over repeated
// simulated runs.
//
// Run with:
//
//	go run ./examples/endtoend
package main

import (
	"context"
	"fmt"

	"repro/internal/backend"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/stats"
	"repro/internal/tuner"
)

func main() {
	const model = "squeezenet-v1.1"
	fmt.Printf("Table I (scaled) on %s\n\n", model)

	type arm struct {
		tn  tuner.Tuner
		lat float64
		v   float64
	}
	arms := []arm{{tn: tuner.NewAutoTVM()}, {tn: tuner.NewBTEDBAO()}}

	for i := range arms {
		b, err := backend.New("gtx1080ti", int64(11+i))
		if err != nil {
			panic(err)
		}
		dep, err := core.OptimizeModel(context.Background(), model, arms[i].tn, b, core.PipelineOptions{
			Tuning: tuner.Options{
				Budget:    128,
				EarlyStop: 64,
				PlanSize:  32,
				Seed:      int64(2021 + i),
			},
			Extract:     graph.AllOps,
			UseTransfer: true,
			Runs:        600,
			Progress: func(ti, n int, name string) {
				fmt.Printf("  [%s %2d/%2d] %s\n", arms[i].tn.Name(), ti, n, name)
			},
		})
		if err != nil {
			panic(err)
		}
		arms[i].lat = dep.LatencyMS
		arms[i].v = dep.Variance
		fmt.Printf("=> %s\n\n", dep.Summary())
	}

	fmt.Printf("%-10s %12s %14s\n", "method", "latency(ms)", "variance")
	fmt.Printf("%-10s %12.4f %14.6f\n", arms[0].tn.Name(), arms[0].lat, arms[0].v)
	fmt.Printf("%-10s %12.4f %14.6f\n", arms[1].tn.Name(), arms[1].lat, arms[1].v)
	fmt.Printf("\nBTED+BAO vs AutoTVM: latency %+.2f%%, variance %+.2f%%\n",
		stats.DeltaPercent(arms[0].lat, arms[1].lat),
		stats.DeltaPercent(arms[0].v, arms[1].v))
	fmt.Println("(full Table I: go run ./cmd/repro -exp table1)")
}
