// Custom operator: the framework is independent of the built-in schedule
// templates — any workload with a knob space can be tuned. This example
// defines a custom space for a wide dense layer (a different split
// structure than the stock template) and a custom evaluation-function
// trainer, then runs the paper's BTED + BAO machinery directly from the
// active package.
//
// Run with:
//
//	go run ./examples/customop
package main

import (
	"fmt"
	"math/rand"

	"repro/internal/active"
	"repro/internal/backend"
	"repro/internal/space"
	"repro/internal/tensor"
	"repro/internal/xgb"
)

func main() {
	// A big fully-connected layer: 1x4096 times 4096x4096.
	w := tensor.Dense(1, 4096, 4096)

	// Custom schedule space: 4-way output split plus a 2-way reduction
	// split and unroll knobs — the same knob names the simulator
	// understands, but with a hand-chosen structure.
	sp := space.New(
		space.NewSplitKnob(space.KnobTileF, w.F, 4),
		space.NewSplitKnob(space.KnobTileK, w.C, 2),
		space.NewEnumKnob(space.KnobAutoUnroll, 0, 256, 1500),
		space.NewEnumKnob(space.KnobUnrollExplicit, 0, 1),
	)
	fmt.Printf("custom space: %d configurations\n", sp.Size())

	// Measurement goes through the backend layer; the shared-stream Measure
	// path is fine here because this example is strictly sequential.
	b, err := backend.New("gtx1080ti", 3)
	if err != nil {
		panic(err)
	}
	measure := func(c space.Config) (float64, bool) {
		m := b.Measure(w, c)
		return m.GFLOPS, m.Valid
	}

	//lint:ignore seedflow fixed demo seed: the example's output is meant to be reproducible verbatim
	rng := rand.New(rand.NewSource(99))

	// Stage 1: BTED initialization (Algorithms 1 & 2).
	bted := active.DefaultBTEDParams()
	bted.M0 = 24
	init := active.BTED(sp, bted, rng)
	samples := make([]active.Sample, 0, len(init))
	for _, c := range init {
		g, ok := measure(c)
		samples = append(samples, active.Sample{Config: c, GFLOPS: g, Valid: ok})
	}
	initBest, _ := active.Best(samples)
	fmt.Printf("BTED init: %d diverse configs, best %.1f GFLOPS\n", len(init), initBest.GFLOPS)

	// Stage 2: BAO with a custom evaluation function — a heavier GBT than
	// the default, demonstrating the pluggable trainer interface.
	trainer := active.XGBTrainer{Params: func() xgb.Params {
		p := xgb.DefaultParams()
		p.NumRounds = 40
		p.MaxDepth = 6
		return p
	}()}
	p := active.DefaultBAOParams()
	p.T = 120
	p.EarlyStop = 0
	runningBest := initBest.GFLOPS
	all := active.BAO(sp, trainer, samples, measure, p, rng, func(step int, s active.Sample) {
		if s.Valid && s.GFLOPS > runningBest {
			runningBest = s.GFLOPS
		}
		if step%40 == 0 {
			fmt.Printf("  step %3d: best so far %.1f GFLOPS\n", step, runningBest)
		}
	})
	best, ok := active.Best(all)
	if !ok {
		panic("no valid configuration found")
	}
	fmt.Printf("BAO final: best %.1f GFLOPS after %d measurements\n", best.GFLOPS, len(all))
	fmt.Printf("best config: %s\n", best.Config)
	fmt.Printf("improvement over init: %.1f%%\n", 100*(best.GFLOPS-initBest.GFLOPS)/initBest.GFLOPS)
}
