#!/bin/bash
# Regenerates every experiment output in this directory (~45 CPU-minutes on
# one core at these scales). EXPERIMENTS.md documents the settings behind
# each file; use `cmd/repro -scale paper` for the full paper settings.
cd "$(dirname "$0")/.." || exit 1
go build -o /tmp/repro-bin ./cmd/repro || exit 1
run() {
  name=$1; shift
  /tmp/repro-bin "$@" > "results/${name}.txt" 2>&1
  echo "${name} $(date +%H:%M:%S)" >> results/progress.txt
}
rm -f results/progress.txt
run fig4      -exp fig4      -trials 2 -budget 1024
run fig5      -exp fig5      -scale paper -trials 2 -budget 1024
run table1    -exp table1    -trials 3 -budget 256
run baselines -exp baselines -trials 1 -budget 192
run batch     -exp batch     -trials 1 -budget 192
run precision -exp precision -trials 1 -budget 256
run crossdev  -exp crossdev  -trials 1 -budget 256
run ablation  -exp ablation  -trials 3 -budget 224
echo "ALL DONE $(date +%H:%M:%S)" >> results/progress.txt
